// Unit tests of the robustness toolkit: the deterministic fault-injection
// registry, row quarantine accounting, and the cube checkpoint format.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>

#include "robust/checkpoint.h"
#include "robust/fault_injection.h"
#include "robust/quarantine.h"

namespace bellwether::robust {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(FaultRegistryTest, DisarmedNeverFires) {
  FaultRegistry reg;
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(reg.ShouldFire("storage.scan", FaultKind::kIoError));
  }
  EXPECT_EQ(reg.total_fires(), 0);
}

TEST(FaultRegistryTest, CountTriggerFiresExactlyFirstN) {
  FaultRegistry reg;
  ASSERT_TRUE(reg.Arm("p:io@3").ok());
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    if (reg.ShouldFire("p", FaultKind::kIoError)) ++fired;
  }
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(reg.fires("p"), 3);
  EXPECT_EQ(reg.arrivals("p"), 10);
  EXPECT_EQ(reg.total_fires(), 3);
}

TEST(FaultRegistryTest, WrongKindNeverFires) {
  FaultRegistry reg;
  ASSERT_TRUE(reg.Arm("p:io@5").ok());
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(reg.ShouldFire("p", FaultKind::kCorrupt));
    EXPECT_FALSE(reg.ShouldFire("p", FaultKind::kCrash));
  }
  EXPECT_EQ(reg.fires("p"), 0);
}

TEST(FaultRegistryTest, UnarmedPointNeverFires) {
  FaultRegistry reg;
  ASSERT_TRUE(reg.Arm("p:io@5").ok());
  EXPECT_FALSE(reg.ShouldFire("q", FaultKind::kIoError));
}

TEST(FaultRegistryTest, ProbabilisticTriggerIsDeterministicPerSeed) {
  auto schedule = [](uint64_t seed) {
    FaultRegistry reg;
    reg.set_seed(seed);
    EXPECT_TRUE(reg.Arm("p:corrupt@0.3").ok());
    std::vector<bool> fires;
    for (int i = 0; i < 200; ++i) {
      fires.push_back(reg.ShouldFire("p", FaultKind::kCorrupt));
    }
    return fires;
  };
  const auto a = schedule(17);
  const auto b = schedule(17);
  const auto c = schedule(18);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // astronomically unlikely to collide
  int fired = 0;
  for (bool f : a) fired += f ? 1 : 0;
  // ~60 expected; allow a wide deterministic band.
  EXPECT_GT(fired, 20);
  EXPECT_LT(fired, 120);
}

TEST(FaultRegistryTest, MultiEntrySpecAndArmedPoints) {
  FaultRegistry reg;
  ASSERT_TRUE(reg.Arm("storage.scan:io@2;cube.scan:crash@1").ok());
  const auto points = reg.ArmedPoints();
  ASSERT_EQ(points.size(), 2u);
  EXPECT_TRUE(reg.ShouldFire("storage.scan", FaultKind::kIoError));
  EXPECT_TRUE(reg.ShouldFire("cube.scan", FaultKind::kCrash));
  EXPECT_FALSE(reg.ShouldFire("cube.scan", FaultKind::kCrash));
}

TEST(FaultRegistryTest, MalformedSpecsAreRejectedAndDisarm) {
  FaultRegistry reg;
  EXPECT_EQ(reg.Arm("nonsense").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(reg.Arm("p:io").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(reg.Arm("p:whatever@3").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(reg.Arm("p:io@").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(reg.Arm("p:io@-2").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(reg.Arm(":io@1").code(), StatusCode::kInvalidArgument);
  // A failed Arm leaves nothing armed.
  EXPECT_FALSE(reg.ShouldFire("p", FaultKind::kIoError));
  EXPECT_TRUE(reg.ArmedPoints().empty());
}

TEST(FaultRegistryTest, DisarmResetsCounts) {
  FaultRegistry reg;
  ASSERT_TRUE(reg.Arm("p:io@2").ok());
  reg.ShouldFire("p", FaultKind::kIoError);
  reg.Disarm();
  EXPECT_EQ(reg.arrivals("p"), 0);
  EXPECT_EQ(reg.total_fires(), 0);
  EXPECT_FALSE(reg.ShouldFire("p", FaultKind::kIoError));
}

TEST(FaultRegistryTest, EmptySpecDisarms) {
  FaultRegistry reg;
  ASSERT_TRUE(reg.Arm("p:io@2").ok());
  ASSERT_TRUE(reg.Arm("").ok());
  EXPECT_FALSE(reg.ShouldFire("p", FaultKind::kIoError));
}

TEST(QuarantineStatsTest, SampleErrorsAreCapped) {
  QuarantineStats stats;
  for (int i = 0; i < 20; ++i) {
    stats.Quarantine("row " + std::to_string(i));
  }
  EXPECT_EQ(stats.rows_quarantined, 20);
  EXPECT_EQ(stats.sample_errors.size(), QuarantineStats::kMaxSampleErrors);
  EXPECT_EQ(stats.sample_errors[0], "row 0");
}

TEST(QuarantineStatsTest, MergeAccumulates) {
  QuarantineStats a, b;
  a.rows_seen = 10;
  a.Quarantine("bad a");
  b.rows_seen = 5;
  b.Quarantine("bad b1");
  b.Quarantine("bad b2");
  a.Merge(b);
  EXPECT_EQ(a.rows_seen, 15);
  EXPECT_EQ(a.rows_quarantined, 3);
  EXPECT_EQ(a.sample_errors.size(), 3u);
}

TEST(FingerprintTest, OrderAndValueSensitive) {
  FingerprintBuilder a, b, c, d;
  a.Add(1).Add(2);
  b.Add(1).Add(2);
  c.Add(2).Add(1);
  d.Add(1).Add(3);
  EXPECT_EQ(a.value(), b.value());
  EXPECT_NE(a.value(), c.value());
  EXPECT_NE(a.value(), d.value());
}

regression::RegressionSuffStats MakeStats() {
  regression::RegressionSuffStats s(3);
  const double rows[4][3] = {{1, 2, 3}, {1, 0, -1}, {1, 5, 2}, {1, 1, 1}};
  const double ys[4] = {2.0, -1.5, 4.25, 0.5};
  for (int i = 0; i < 4; ++i) s.Add(rows[i], ys[i], 1.0 + 0.25 * i);
  return s;
}

TEST(CheckpointTest, RoundTripIsExact) {
  CubeBuildCheckpoint ckpt;
  ckpt.fingerprint = 0xDEADBEEFCAFEF00DULL;
  ckpt.regions_processed = 7;
  PickCheckpoint pick;
  pick.error = 1.0 / 3.0;  // not representable in decimal; %.17g must hold it
  pick.region = 12;
  pick.stats = MakeStats();
  pick.fallback_region = 3;
  pick.fallback_examples = 4;
  pick.fallback_stats = MakeStats();
  ckpt.picks.push_back(pick);
  PickCheckpoint untouched;  // defaults, with an infinite error
  untouched.error = kInf;
  ckpt.picks.push_back(untouched);

  const std::string path = ::testing::TempDir() + "/ckpt.bwk";
  ASSERT_TRUE(SaveCubeCheckpoint(ckpt, path).ok());
  auto back = LoadCubeCheckpoint(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->fingerprint, ckpt.fingerprint);
  EXPECT_EQ(back->regions_processed, 7);
  ASSERT_EQ(back->picks.size(), 2u);
  EXPECT_EQ(back->picks[0].error, pick.error);  // bit-exact
  EXPECT_EQ(back->picks[0].region, 12);
  EXPECT_EQ(back->picks[0].fallback_region, 3);
  EXPECT_EQ(back->picks[0].fallback_examples, 4);
  EXPECT_EQ(back->picks[0].stats.num_examples(), 4);
  EXPECT_EQ(back->picks[0].stats.xtwy()[2], pick.stats.xtwy()[2]);
  EXPECT_EQ(back->picks[0].stats.xtwx()(1, 2), pick.stats.xtwx()(1, 2));
  EXPECT_EQ(back->picks[1].error, kInf);  // inf survives the text format
  EXPECT_EQ(back->picks[1].region, -1);
  std::remove(path.c_str());
}

TEST(CheckpointTest, TruncatedFileIsIoError) {
  CubeBuildCheckpoint ckpt;
  ckpt.fingerprint = 5;
  ckpt.regions_processed = 1;
  PickCheckpoint pick;
  pick.stats = MakeStats();
  pick.fallback_stats = MakeStats();
  ckpt.picks.push_back(pick);
  const std::string path = ::testing::TempDir() + "/ckpt_trunc.bwk";
  ASSERT_TRUE(SaveCubeCheckpoint(ckpt, path).ok());
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  // Cut at several depths: after the magic, mid-header, mid-pick.
  for (size_t cut : {size_t{30}, size_t{60}, size_t{100},
                     content.size() - 4}) {
    ASSERT_LT(cut, content.size());
    std::ofstream out(path);
    out << content.substr(0, cut);
    out.close();
    auto r = LoadCubeCheckpoint(path);
    ASSERT_FALSE(r.ok()) << "cut at " << cut;
    EXPECT_EQ(r.status().code(), StatusCode::kIoError) << "cut at " << cut;
  }
  std::remove(path.c_str());
}

TEST(CheckpointTest, WrongMagicIsFailedPrecondition) {
  const std::string path = ::testing::TempDir() + "/ckpt_magic.bwk";
  std::ofstream out(path);
  out << "bellwether-cube-checkpoint-v999\nfingerprint 1\n";
  out.close();
  auto r = LoadCubeCheckpoint(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(CheckpointTest, MissingFileIsIoError) {
  auto r = LoadCubeCheckpoint(::testing::TempDir() + "/does_not_exist.bwk");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace bellwether::robust
