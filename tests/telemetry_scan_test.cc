// Makes the paper's scan-complexity claims checkable: Lemma 1 (the
// RainForest tree builder performs exactly one pass over the training data
// per tree level) and Lemma 2 (the single-scan and optimized cube builders
// perform exactly one pass total), with the naive variants strictly worse.
// The counters are asserted both through the build telemetry carried on the
// result objects and through the storage layer's own I/O statistics, so a
// regression in either bookkeeping path is caught.

#include <gtest/gtest.h>

#include "core/basic_search.h"
#include "core/bellwether_cube.h"
#include "core/bellwether_tree.h"
#include "core/training_data_gen.h"
#include "datagen/mail_order.h"
#include "datagen/simulation.h"
#include "storage/training_data.h"

namespace bellwether::core {
namespace {

datagen::SimulationDataset MakeSim(uint64_t seed, int32_t items = 240,
                                   double noise = 0.3) {
  datagen::SimulationConfig config;
  config.num_items = items;
  config.generator_tree_nodes = 7;
  config.noise = noise;
  config.num_windows = 3;
  config.location_fanouts = {2, 2};
  config.seed = seed;
  return datagen::GenerateSimulation(config);
}

TreeBuildConfig MakeTreeConfig(const datagen::SimulationDataset& sim) {
  TreeBuildConfig config;
  config.split_columns = sim.feature_columns;
  config.min_items = 40;
  config.max_depth = 4;
  config.min_examples_per_model = 8;
  return config;
}

CubeBuildConfig MakeCubeConfig() {
  CubeBuildConfig config;
  config.min_subset_size = 20;
  config.min_examples_per_model = 8;
  config.compute_cv_stats = false;
  return config;
}

// Lemma 1: the RainForest builder scans the data exactly once per level.
TEST(TelemetryScanTest, RainForestTreeScansOncePerLevel) {
  datagen::SimulationDataset sim = MakeSim(11);
  storage::MemoryTrainingData source(sim.sets);
  auto tree = BuildBellwetherTreeRainForest(&source, sim.items,
                                            MakeTreeConfig(sim));
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  const TreeBuildTelemetry& t = tree->build_telemetry();
  EXPECT_EQ(t.data_passes, tree->NumLevels());
  EXPECT_EQ(t.levels, tree->NumLevels());
  // The telemetry agrees with what the storage layer actually served.
  EXPECT_EQ(source.io_stats().sequential_scans, t.data_passes);
  EXPECT_EQ(t.nodes_created,
            static_cast<int64_t>(tree->nodes().size()));
  EXPECT_GT(t.suff_stats_peak, 0);
  EXPECT_GE(t.build_seconds, 0.0);
  // A non-trivial tree (the generator plants 7 bellwether nodes).
  EXPECT_GT(tree->NumLevels(), 1);
}

// The naive builder re-reads the data once per node plus once per
// (node, candidate) pair — strictly more scans than one per level
// whenever the tree splits at all.
TEST(TelemetryScanTest, NaiveTreeScansStrictlyMoreThanRainForest) {
  datagen::SimulationDataset sim = MakeSim(12);
  storage::MemoryTrainingData naive_src(sim.sets);
  storage::MemoryTrainingData rf_src(sim.sets);
  const TreeBuildConfig config = MakeTreeConfig(sim);
  auto naive = BuildBellwetherTreeNaive(&naive_src, sim.items, config);
  auto rf = BuildBellwetherTreeRainForest(&rf_src, sim.items, config);
  ASSERT_TRUE(naive.ok());
  ASSERT_TRUE(rf.ok());
  ASSERT_GT(rf->NumLevels(), 1);  // the comparison is vacuous for a stump
  EXPECT_GT(naive->build_telemetry().data_passes,
            rf->build_telemetry().data_passes);
  // Same tree out of both builders, so same node count in the telemetry.
  EXPECT_EQ(naive->build_telemetry().nodes_created,
            rf->build_telemetry().nodes_created);
  // Naive evaluates candidates one scan each; RF folds them into the
  // per-level scan, so it holds strictly more statistics at once.
  EXPECT_GE(rf->build_telemetry().suff_stats_peak,
            naive->build_telemetry().suff_stats_peak);
}

// Lemma 2: the single-scan and optimized cube builders read the training
// data exactly once, regardless of how many subsets are significant.
TEST(TelemetryScanTest, SingleScanAndOptimizedCubeScanExactlyOnce) {
  datagen::SimulationDataset sim = MakeSim(13);
  auto subsets = ItemSubsetSpace::Create(sim.items, sim.item_hierarchies);
  ASSERT_TRUE(subsets.ok());
  const CubeBuildConfig config = MakeCubeConfig();

  storage::MemoryTrainingData single_src(sim.sets);
  auto single = BuildBellwetherCubeSingleScan(&single_src, *subsets, config);
  ASSERT_TRUE(single.ok()) << single.status().ToString();
  EXPECT_EQ(single->build_telemetry().data_passes, 1);
  EXPECT_EQ(single_src.io_stats().sequential_scans, 1);

  storage::MemoryTrainingData opt_src(sim.sets);
  auto opt = BuildBellwetherCubeOptimized(&opt_src, *subsets, config);
  ASSERT_TRUE(opt.ok()) << opt.status().ToString();
  EXPECT_EQ(opt->build_telemetry().data_passes, 1);
  EXPECT_EQ(opt_src.io_stats().sequential_scans, 1);

  EXPECT_GT(single->build_telemetry().significant_subsets, 1);
  EXPECT_GT(single->build_telemetry().cells_materialized, 0);
}

// The naive cube builder performs one pass per significant subset —
// strictly more than the single-scan builder whenever more than one
// subset is significant.
TEST(TelemetryScanTest, NaiveCubeScansOncePerSignificantSubset) {
  datagen::SimulationDataset sim = MakeSim(14);
  auto subsets = ItemSubsetSpace::Create(sim.items, sim.item_hierarchies);
  ASSERT_TRUE(subsets.ok());
  storage::MemoryTrainingData source(sim.sets);
  auto cube = BuildBellwetherCubeNaive(&source, *subsets, MakeCubeConfig());
  ASSERT_TRUE(cube.ok()) << cube.status().ToString();
  const CubeBuildTelemetry& t = cube->build_telemetry();
  ASSERT_GT(t.significant_subsets, 1);
  EXPECT_EQ(t.data_passes, t.significant_subsets);
  // Each naive pass is a region-by-region re-read of the whole source (the
  // builder never uses the sequential-scan interface), so the storage layer
  // must have served at least one full set of region reads per pass.
  EXPECT_EQ(source.io_stats().sequential_scans, 0);
  EXPECT_GE(source.io_stats().region_reads,
            t.data_passes *
                static_cast<int64_t>(source.num_region_sets()));
}

// The basic search telemetry accounts for every candidate region exactly
// once and records the rows it touched.
TEST(TelemetryScanTest, BasicSearchTelemetryAccountsForEveryRegion) {
  datagen::MailOrderConfig config;
  config.num_items = 150;
  config.density = 1.2;
  config.seed = 99;
  datagen::MailOrderDataset dataset = datagen::GenerateMailOrder(config);
  const BellwetherSpec spec = dataset.MakeSpec(/*budget=*/60.0,
                                               /*min_coverage=*/0.5);
  auto data = GenerateTrainingDataInMemory(spec);
  ASSERT_TRUE(data.ok()) << data.status().ToString();

  storage::TrainingDataSource& source = *data->source;
  BasicSearchOptions options;
  options.estimate = regression::ErrorEstimate::kTrainingSet;
  auto result = RunBasicBellwetherSearch(&source, options);
  ASSERT_TRUE(result.ok());
  const SearchTelemetry& t = result->telemetry;
  EXPECT_EQ(t.regions_enumerated,
            static_cast<int64_t>(result->scores.size()));
  // Every enumerated region is scored, skipped for lack of examples, or a
  // fit failure — nothing falls through the cracks.
  EXPECT_EQ(t.regions_enumerated,
            t.regions_scored + t.skipped_min_examples + t.model_fit_failures);
  int64_t rows = 0;
  for (const auto& set : *data->memory_sets()) rows += set.num_examples();
  EXPECT_EQ(t.rows_scanned, rows);
  EXPECT_GE(t.scan_seconds, 0.0);
  EXPECT_EQ(t.pruned_by_cost, 0);  // no budget applied yet

  // Re-selection under a tight budget records the regions it skipped.
  auto under = SelectUnderBudget(*result, &source, data->profile.region_costs,
                                 /*budget=*/20.0);
  ASSERT_TRUE(under.ok());
  int64_t over_budget = 0;
  for (const auto& s : result->scores) {
    if (data->profile.region_costs[s.region] > 20.0) ++over_budget;
  }
  EXPECT_EQ(under->telemetry.pruned_by_cost, over_budget);
  EXPECT_GT(under->telemetry.pruned_by_cost, 0);
}

}  // namespace
}  // namespace bellwether::core
