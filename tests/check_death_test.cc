// BW_CHECK diagnostics: a failed invariant prints the file, line, and the
// failed expression to stderr before aborting, so post-mortems of batch jobs
// have something to go on.

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/status.h"

namespace bellwether {
namespace {

TEST(CheckDeathTest, FailedCheckPrintsFileLineAndExpression) {
  EXPECT_DEATH(BW_CHECK(2 + 2 == 5),
               "BW_CHECK failed at .*check_death_test\\.cc:[0-9]+: "
               "2 \\+ 2 == 5");
}

TEST(CheckDeathTest, PassingCheckIsSilent) {
  BW_CHECK(2 + 2 == 4);  // must not abort
  SUCCEED();
}

TEST(CheckDeathTest, CheckOkPrintsTheStatus) {
  EXPECT_DEATH(BW_CHECK_OK(Status::IoError("disk gone")),
               "BW_CHECK_OK failed at .*check_death_test\\.cc:[0-9]+:.*"
               "disk gone");
}

TEST(CheckDeathTest, CheckOkPassesThroughOkStatus) {
  BW_CHECK_OK(Status::OK());
  SUCCEED();
}

}  // namespace
}  // namespace bellwether
