// TrainingDataSink contract tests: ordering enforcement at Finish(),
// weighted and zero-example round trips through every sink kind, the
// BudgetedSink's mid-stream migration to disk, the peak-resident-bytes
// bound, and the acceptance criterion that a budget smaller than the data
// produces bit-identical search/tree/cube results at any thread count —
// including under injected storage faults and checkpoint/resume.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/basic_search.h"
#include "core/bellwether_cube.h"
#include "core/bellwether_tree.h"
#include "core/training_data_gen.h"
#include "datagen/mail_order.h"
#include "obs/metrics.h"
#include "robust/fault_injection.h"
#include "storage/retrying_source.h"
#include "storage/training_data.h"
#include "storage/training_data_sink.h"

namespace bellwether::storage {
namespace {

RegionTrainingSet MakeSet(olap::RegionId region, int64_t n,
                          bool weighted = false) {
  RegionTrainingSet set;
  set.region = region;
  set.num_features = 2;
  for (int64_t i = 0; i < n; ++i) {
    set.items.push_back(static_cast<int32_t>(i));
    set.targets.push_back(static_cast<double>(region) + 0.5 * i);
    set.features.push_back(1.0);
    set.features.push_back(static_cast<double>(region * 10 + i));
    if (weighted) set.weights.push_back(1.0 + i);
  }
  return set;
}

void ExpectSameSets(TrainingDataSource* a, TrainingDataSource* b) {
  ASSERT_EQ(a->num_region_sets(), b->num_region_sets());
  for (size_t i = 0; i < a->num_region_sets(); ++i) {
    auto sa = a->Read(i);
    auto sb = b->Read(i);
    ASSERT_TRUE(sa.ok());
    ASSERT_TRUE(sb.ok());
    EXPECT_EQ(sa->region, sb->region) << "set " << i;
    EXPECT_EQ(sa->items, sb->items) << "set " << i;
    EXPECT_EQ(sa->features, sb->features) << "set " << i;
    EXPECT_EQ(sa->targets, sb->targets) << "set " << i;
    EXPECT_EQ(sa->weights, sb->weights) << "set " << i;
  }
}

// ---- Ordering invariant enforced at Finish() ----

TEST(SinkOrderingTest, MemorySinkRejectsOutOfOrderAtFinish) {
  MemorySink sink;
  ASSERT_TRUE(sink.Append(MakeSet(5, 3)).ok());
  ASSERT_TRUE(sink.Append(MakeSet(3, 3)).ok());  // violation recorded
  auto source = sink.Finish();
  ASSERT_FALSE(source.ok());
  EXPECT_EQ(source.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(source.status().ToString().find("ascending"), std::string::npos);
}

TEST(SinkOrderingTest, DuplicateRegionIsAlsoAViolation) {
  MemorySink sink;
  ASSERT_TRUE(sink.Append(MakeSet(4, 2)).ok());
  ASSERT_TRUE(sink.Append(MakeSet(4, 2)).ok());
  EXPECT_FALSE(sink.Finish().ok());
}

TEST(SinkOrderingTest, SpillSinkRejectsOutOfOrderAtFinish) {
  const std::string path = ::testing::TempDir() + "/sink_order.spill";
  auto sink = SpillSink::Create(path);
  ASSERT_TRUE(sink.ok());
  ASSERT_TRUE((*sink)->Append(MakeSet(7, 2)).ok());
  ASSERT_TRUE((*sink)->Append(MakeSet(2, 2)).ok());
  auto source = (*sink)->Finish();
  ASSERT_FALSE(source.ok());
  EXPECT_EQ(source.status().code(), StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(SinkOrderingTest, BudgetedSinkRejectsOutOfOrderAtFinish) {
  const std::string path = ::testing::TempDir() + "/sink_order_budget.spill";
  BudgetedSink sink(/*memory_budget_bytes=*/64, path);
  ASSERT_TRUE(sink.Append(MakeSet(9, 4)).ok());
  ASSERT_TRUE(sink.Append(MakeSet(1, 4)).ok());
  EXPECT_TRUE(sink.spilled());  // migration happened before the check
  EXPECT_FALSE(sink.Finish().ok());
  std::remove(path.c_str());
}

TEST(SinkOrderingTest, AscendingAppendsFinishCleanly) {
  MemorySink sink;
  for (olap::RegionId r : {1, 2, 5, 9}) {
    ASSERT_TRUE(sink.Append(MakeSet(r, 2)).ok());
  }
  EXPECT_EQ(sink.sets_appended(), 4);
  auto source = sink.Finish();
  ASSERT_TRUE(source.ok());
  EXPECT_EQ((*source)->num_region_sets(), 4u);
}

// ---- Weighted and zero-example round trips ----

TEST(SinkRoundTripTest, WeightedSetsSurviveEverySinkKind) {
  std::vector<RegionTrainingSet> ref;
  for (olap::RegionId r : {0, 3, 4}) ref.push_back(MakeSet(r, 3, true));

  MemorySink mem;
  for (const auto& s : ref) ASSERT_TRUE(mem.Append(RegionTrainingSet(s)).ok());
  auto mem_src = mem.Finish();
  ASSERT_TRUE(mem_src.ok());

  const std::string spath = ::testing::TempDir() + "/sink_weighted.spill";
  auto spill = SpillSink::Create(spath);
  ASSERT_TRUE(spill.ok());
  for (const auto& s : ref) {
    ASSERT_TRUE((*spill)->Append(RegionTrainingSet(s)).ok());
  }
  auto spill_src = (*spill)->Finish();
  ASSERT_TRUE(spill_src.ok());

  const std::string bpath = ::testing::TempDir() + "/sink_weighted_b.spill";
  BudgetedSink budgeted(/*memory_budget_bytes=*/1, bpath);
  for (const auto& s : ref) {
    ASSERT_TRUE(budgeted.Append(RegionTrainingSet(s)).ok());
  }
  ASSERT_TRUE(budgeted.spilled());
  auto budget_src = budgeted.Finish();
  ASSERT_TRUE(budget_src.ok());

  ExpectSameSets(mem_src->get(), spill_src->get());
  ExpectSameSets(mem_src->get(), budget_src->get());
  auto back = (*spill_src)->Read(1);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->weighted());
  EXPECT_EQ(back->weights, ref[1].weights);
  std::remove(spath.c_str());
  std::remove(bpath.c_str());
}

TEST(SinkRoundTripTest, ZeroExampleRegionsSurviveEverySinkKind) {
  // Region 2 is feasible but empty; it must round-trip as an empty set, not
  // vanish or corrupt the index.
  std::vector<RegionTrainingSet> ref;
  ref.push_back(MakeSet(1, 2));
  ref.push_back(MakeSet(2, 0));
  ref.push_back(MakeSet(3, 4));

  const std::string spath = ::testing::TempDir() + "/sink_empty.spill";
  auto spill = SpillSink::Create(spath);
  ASSERT_TRUE(spill.ok());
  for (const auto& s : ref) {
    ASSERT_TRUE((*spill)->Append(RegionTrainingSet(s)).ok());
  }
  auto spill_src = (*spill)->Finish();
  ASSERT_TRUE(spill_src.ok());
  ASSERT_EQ((*spill_src)->num_region_sets(), 3u);
  auto empty = (*spill_src)->Read(1);
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->region, 2);
  EXPECT_EQ(empty->num_examples(), 0u);

  const std::string bpath = ::testing::TempDir() + "/sink_empty_b.spill";
  BudgetedSink budgeted(/*memory_budget_bytes=*/1, bpath);
  for (const auto& s : ref) {
    ASSERT_TRUE(budgeted.Append(RegionTrainingSet(s)).ok());
  }
  auto budget_src = budgeted.Finish();
  ASSERT_TRUE(budget_src.ok());
  ExpectSameSets(spill_src->get(), budget_src->get());
  std::remove(spath.c_str());
  std::remove(bpath.c_str());
}

// ---- BudgetedSink migration mechanics ----

TEST(BudgetedSinkTest, StaysInMemoryUnderBudget) {
  const std::string path = ::testing::TempDir() + "/sink_nomigrate.spill";
  BudgetedSink sink(/*memory_budget_bytes=*/1 << 20, path);
  for (olap::RegionId r : {1, 2, 3}) {
    ASSERT_TRUE(sink.Append(MakeSet(r, 5)).ok());
  }
  EXPECT_FALSE(sink.spilled());
  EXPECT_GT(sink.resident_bytes(), 0u);
  auto source = sink.Finish();
  ASSERT_TRUE(source.ok());
  // Never exceeded the budget: the result is the in-memory source and no
  // spill file was created.
  EXPECT_NE(dynamic_cast<MemoryTrainingData*>(source->get()), nullptr);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_EQ(f, nullptr);
  if (f != nullptr) std::fclose(f);
}

TEST(BudgetedSinkTest, MigratesMidStreamAndDropsResidency) {
  std::vector<RegionTrainingSet> ref;
  for (olap::RegionId r = 0; r < 8; ++r) ref.push_back(MakeSet(r, 6));
  const size_t two_sets = ref[0].ByteSize() + ref[1].ByteSize();

  const std::string path = ::testing::TempDir() + "/sink_migrate.spill";
  BudgetedSink sink(/*memory_budget_bytes=*/two_sets, path);
  size_t appended = 0;
  for (const auto& s : ref) {
    ASSERT_TRUE(sink.Append(RegionTrainingSet(s)).ok());
    ++appended;
    if (appended <= 2) {
      EXPECT_FALSE(sink.spilled()) << "after " << appended;
    } else {
      // The third set exceeds the budget: everything migrates to disk and
      // the buffer is released.
      EXPECT_TRUE(sink.spilled()) << "after " << appended;
      EXPECT_EQ(sink.resident_bytes(), 0u);
    }
  }
  auto source = sink.Finish();
  ASSERT_TRUE(source.ok());
  EXPECT_NE(dynamic_cast<SpilledTrainingData*>(source->get()), nullptr);

  MemorySink mem;
  for (const auto& s : ref) ASSERT_TRUE(mem.Append(RegionTrainingSet(s)).ok());
  auto mem_src = mem.Finish();
  ASSERT_TRUE(mem_src.ok());
  ExpectSameSets(mem_src->get(), source->get());
  std::remove(path.c_str());
}

TEST(BudgetedSinkTest, PeakResidentGaugeBoundedByBudgetPlusLargestSet) {
  auto* gauge =
      obs::DefaultMetrics().GetGauge(obs::kMDatagenPeakResidentBytes);
  gauge->Reset();

  std::vector<RegionTrainingSet> ref;
  size_t largest = 0;
  for (olap::RegionId r = 0; r < 10; ++r) {
    ref.push_back(MakeSet(r, 4 + (r % 3) * 8));
    largest = std::max(largest, ref.back().ByteSize());
  }
  const size_t budget = ref[0].ByteSize() * 2;
  const std::string path = ::testing::TempDir() + "/sink_peak.spill";
  BudgetedSink sink(budget, path);
  for (auto& s : ref) ASSERT_TRUE(sink.Append(std::move(s)).ok());
  ASSERT_TRUE(sink.spilled());
  ASSERT_TRUE(sink.Finish().ok());

  const double peak = gauge->Value();
  EXPECT_GT(peak, 0.0);
  EXPECT_LE(peak, static_cast<double>(budget + largest));
  std::remove(path.c_str());
}

// ---- Budget < total data is invisible to every downstream consumer ----

class BudgetedPipelineTest : public ::testing::Test {
 protected:
  static core::BellwetherSpec MakeSpecFor(int32_t num_threads) {
    core::BellwetherSpec spec = dataset_->MakeSpec(60.0, 0.5);
    spec.exec.num_threads = num_threads;
    return spec;
  }

  static void SetUpTestSuite() {
    datagen::MailOrderConfig config;
    config.num_items = 120;
    config.density = 1.0;
    config.seed = 4242;
    dataset_ =
        new datagen::MailOrderDataset(datagen::GenerateMailOrder(config));
  }
  static void TearDownTestSuite() { delete dataset_; }

  static datagen::MailOrderDataset* dataset_;
};

datagen::MailOrderDataset* BudgetedPipelineTest::dataset_ = nullptr;

TEST_F(BudgetedPipelineTest, BudgetedRunBitIdenticalAtAnyThreadCount) {
  // Unbudgeted serial reference.
  auto ref = core::GenerateTrainingDataInMemory(MakeSpecFor(1));
  ASSERT_TRUE(ref.ok()) << ref.status().ToString();

  core::BasicSearchOptions search_options;
  search_options.estimate = regression::ErrorEstimate::kTrainingSet;
  auto ref_search =
      core::RunBasicBellwetherSearch(ref->source.get(), search_options);
  ASSERT_TRUE(ref_search.ok());
  ASSERT_TRUE(ref_search->found());

  core::TreeBuildConfig tree_config;
  tree_config.split_columns = {"Category", "RDExpense"};
  tree_config.min_items = 25;
  tree_config.max_depth = 3;
  tree_config.max_numeric_split_points = 5;
  tree_config.min_examples_per_model = 10;
  auto ref_tree = core::BuildBellwetherTreeRainForest(
      ref->source.get(), dataset_->items, tree_config);
  ASSERT_TRUE(ref_tree.ok());

  auto subsets = core::ItemSubsetSpace::Create(dataset_->items,
                                               dataset_->item_hierarchies);
  ASSERT_TRUE(subsets.ok());
  core::CubeBuildConfig cube_config;
  cube_config.min_subset_size = 20;
  cube_config.min_examples_per_model = 10;
  cube_config.compute_cv_stats = false;
  auto ref_cube = core::BuildBellwetherCubeSingleScan(ref->source.get(),
                                                      *subsets, cube_config);
  ASSERT_TRUE(ref_cube.ok());

  for (int32_t num_threads : {1, 2, 4}) {
    SCOPED_TRACE("num_threads=" + std::to_string(num_threads));
    const std::string path = ::testing::TempDir() + "/budget_pipeline_" +
                             std::to_string(num_threads) + ".spill";
    // A budget of one set's bytes forces migration almost immediately.
    BudgetedSink sink(/*memory_budget_bytes=*/4096, path);
    auto profile =
        core::GenerateTrainingData(MakeSpecFor(num_threads), &sink);
    ASSERT_TRUE(profile.ok()) << profile.status().ToString();
    ASSERT_TRUE(sink.spilled());
    auto source = sink.Finish();
    ASSERT_TRUE(source.ok());

    // The profile itself is identical.
    EXPECT_EQ(profile->targets, ref->profile.targets);
    EXPECT_EQ(profile->region_costs, ref->profile.region_costs);
    EXPECT_EQ(profile->feasible.regions, ref->profile.feasible.regions);

    // Search: same bellwether, error, model, and telemetry scan counts.
    auto search =
        core::RunBasicBellwetherSearch(source->get(), search_options);
    ASSERT_TRUE(search.ok());
    EXPECT_EQ(search->bellwether, ref_search->bellwether);
    EXPECT_EQ(search->error.rmse, ref_search->error.rmse);
    EXPECT_EQ(search->model.beta(), ref_search->model.beta());
    EXPECT_EQ(search->telemetry.rows_scanned,
              ref_search->telemetry.rows_scanned);
    EXPECT_EQ(search->telemetry.regions_enumerated,
              ref_search->telemetry.regions_enumerated);

    // Tree: identical structure, regions, models.
    auto tree = core::BuildBellwetherTreeRainForest(
        source->get(), dataset_->items, tree_config);
    ASSERT_TRUE(tree.ok());
    ASSERT_EQ(tree->nodes().size(), ref_tree->nodes().size());
    for (size_t i = 0; i < tree->nodes().size(); ++i) {
      EXPECT_EQ(tree->nodes()[i].region, ref_tree->nodes()[i].region);
      EXPECT_EQ(tree->nodes()[i].error, ref_tree->nodes()[i].error);
      EXPECT_EQ(tree->nodes()[i].model.beta(),
                ref_tree->nodes()[i].model.beta());
      EXPECT_EQ(tree->nodes()[i].children, ref_tree->nodes()[i].children);
    }

    // Cube: identical cells and picks.
    auto cube = core::BuildBellwetherCubeSingleScan(source->get(), *subsets,
                                                    cube_config);
    ASSERT_TRUE(cube.ok());
    ASSERT_EQ(cube->cells().size(), ref_cube->cells().size());
    for (size_t i = 0; i < cube->cells().size(); ++i) {
      EXPECT_EQ(cube->cells()[i].region, ref_cube->cells()[i].region);
      EXPECT_EQ(cube->cells()[i].error, ref_cube->cells()[i].error);
      EXPECT_EQ(cube->cells()[i].model.beta(),
                ref_cube->cells()[i].model.beta());
      EXPECT_EQ(cube->cells()[i].fallback_pick,
                ref_cube->cells()[i].fallback_pick);
    }
    std::remove(path.c_str());
  }
}

class ScopedFaults {
 public:
  explicit ScopedFaults(const std::string& spec) {
    robust::FaultRegistry::Default().Disarm();
    const Status st = robust::FaultRegistry::Default().Arm(spec);
    EXPECT_TRUE(st.ok()) << st.ToString();
  }
  ~ScopedFaults() { robust::FaultRegistry::Default().Disarm(); }
};

TEST_F(BudgetedPipelineTest, SpilledSourceSurvivesScanFaultsAndResumes) {
  // Generate through a BudgetedSink that migrates mid-stream, then drive
  // the spilled source through (1) transient storage.scan faults behind the
  // retrying wrapper and (2) a killed, checkpointed cube build — both must
  // fingerprint/produce results identical to the clean in-memory run.
  auto ref = core::GenerateTrainingDataInMemory(MakeSpecFor(1));
  ASSERT_TRUE(ref.ok());

  const std::string path = ::testing::TempDir() + "/budget_faulted.spill";
  BudgetedSink sink(/*memory_budget_bytes=*/4096, path);
  auto profile = core::GenerateTrainingData(MakeSpecFor(1), &sink);
  ASSERT_TRUE(profile.ok());
  ASSERT_TRUE(sink.spilled());
  auto source = sink.Finish();
  ASSERT_TRUE(source.ok());

  core::BasicSearchOptions options;
  options.estimate = regression::ErrorEstimate::kTrainingSet;
  auto clean = core::RunBasicBellwetherSearch(ref->source.get(), options);
  ASSERT_TRUE(clean.ok());

  {
    RetryPolicy policy;
    policy.sleep_fn = [](int64_t) {};
    RetryingTrainingDataSource retrying(source->get(), policy);
    ScopedFaults faults("storage.scan:io@2");
    auto faulted = core::RunBasicBellwetherSearch(&retrying, options);
    ASSERT_TRUE(faulted.ok()) << faulted.status().ToString();
    EXPECT_EQ(faulted->bellwether, clean->bellwether);
    EXPECT_EQ(faulted->error.rmse, clean->error.rmse);
    EXPECT_EQ(retrying.retry_stats().retries, 2);
  }

  auto subsets = core::ItemSubsetSpace::Create(dataset_->items,
                                               dataset_->item_hierarchies);
  ASSERT_TRUE(subsets.ok());
  core::CubeBuildConfig base;
  base.min_subset_size = 20;
  base.min_examples_per_model = 10;
  base.compute_cv_stats = false;
  auto ref_cube =
      core::BuildBellwetherCubeSingleScan(ref->source.get(), *subsets, base);
  ASSERT_TRUE(ref_cube.ok());

  core::CubeBuildConfig ckpt = base;
  ckpt.checkpoint_path = ::testing::TempDir() + "/budget_faulted.bwk";
  ckpt.checkpoint_every = 1;
  {
    ScopedFaults faults("cube.scan:crash@1");
    auto crashed =
        core::BuildBellwetherCubeSingleScan(source->get(), *subsets, ckpt);
    ASSERT_FALSE(crashed.ok());
  }
  // The checkpoint fingerprint computed over the spilled source matches the
  // resumed build's, so the resume picks up instead of restarting — and the
  // final cube is identical to the in-memory reference.
  auto resumed =
      core::BuildBellwetherCubeSingleScan(source->get(), *subsets, ckpt);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(resumed->build_telemetry().resumed_regions, 1);
  ASSERT_EQ(resumed->cells().size(), ref_cube->cells().size());
  for (size_t i = 0; i < ref_cube->cells().size(); ++i) {
    EXPECT_EQ(resumed->cells()[i].region, ref_cube->cells()[i].region);
    EXPECT_EQ(resumed->cells()[i].error, ref_cube->cells()[i].error);
    EXPECT_EQ(resumed->cells()[i].model.beta(),
              ref_cube->cells()[i].model.beta());
  }
  std::remove(ckpt.checkpoint_path.c_str());
  std::remove(path.c_str());
}

// ---- Arena shell accounting on sink error paths ----

TEST(BudgetedSinkTest, ArenaBalancesAfterInjectedSpillFault) {
  std::vector<RegionTrainingSet> ref;
  for (olap::RegionId r = 0; r < 3; ++r) ref.push_back(MakeSet(r, 6));
  const size_t budget = ref[0].ByteSize() + ref[1].ByteSize();

  auto* releases = obs::DefaultMetrics().GetCounter(obs::kMArenaReleases);
  const int64_t releases_before = releases->Value();

  const std::string path = ::testing::TempDir() + "/sink_fault.spill";
  BudgetedSink sink(budget, path);
  ASSERT_TRUE(sink.Append(RegionTrainingSet(ref[0])).ok());
  ASSERT_TRUE(sink.Append(RegionTrainingSet(ref[1])).ok());
  EXPECT_FALSE(sink.spilled());
  {
    // The third set exceeds the budget and triggers the migration; its very
    // first spill write fails. Every shell the sink holds — the two
    // buffered sets and the incoming one — must go back to the arena, not
    // die with the abandoned sink.
    ScopedFaults faults("storage.spill:io@1");
    const Status st = sink.Append(RegionTrainingSet(ref[2]));
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kIoError);
  }
  EXPECT_EQ(sink.resident_bytes(), 0u);
  EXPECT_EQ(releases->Value() - releases_before, 3);
  std::remove(path.c_str());
}

TEST(BudgetedSinkTest, ArenaBalancesWhenSpillFileCannotBeCreated) {
  std::vector<RegionTrainingSet> ref;
  for (olap::RegionId r = 0; r < 2; ++r) ref.push_back(MakeSet(r, 6));

  auto* releases = obs::DefaultMetrics().GetCounter(obs::kMArenaReleases);
  const int64_t releases_before = releases->Value();

  // A spill path inside a directory that does not exist: migration fails at
  // SpillFileWriter::Create, before any buffered set is written.
  BudgetedSink sink(/*memory_budget_bytes=*/ref[0].ByteSize(),
                    ::testing::TempDir() + "/no_such_dir/sink.spill");
  ASSERT_TRUE(sink.Append(RegionTrainingSet(ref[0])).ok());
  const Status st = sink.Append(RegionTrainingSet(ref[1]));
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  EXPECT_EQ(sink.resident_bytes(), 0u);
  EXPECT_EQ(releases->Value() - releases_before, 2);
}

}  // namespace
}  // namespace bellwether::storage
