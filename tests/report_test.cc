// Flight-recorder run reports (src/obs/report.*): histogram percentile
// edge cases, JSON round-trip bit-identity, the logical/timing split and its
// thread-count byte-identity contract, the config fingerprint, the builder
// report attachments, and the benchdiff comparison.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/basic_search.h"
#include "core/bellwether_cube.h"
#include "core/bellwether_tree.h"
#include "datagen/simulation.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "storage/training_data.h"

namespace bellwether::obs {
namespace {

// ---------------------------------------------------------------------------
// Histogram percentiles
// ---------------------------------------------------------------------------

TEST(HistogramPercentileTest, EmptyHistogramIsZero) {
  EXPECT_EQ(EstimateHistogramPercentile({1.0, 10.0}, {0, 0, 0}, 0.5), 0.0);
  EXPECT_EQ(EstimateHistogramPercentile({1.0, 10.0}, {0, 0, 0}, 0.99), 0.0);
}

TEST(HistogramPercentileTest, SingleSampleLandsInItsBucket) {
  // One observation in (1, 10]: every quantile interpolates inside it.
  const std::vector<double> bounds{1.0, 10.0};
  const std::vector<int64_t> counts{0, 1, 0};
  for (double q : {0.01, 0.5, 0.99}) {
    const double v = EstimateHistogramPercentile(bounds, counts, q);
    EXPECT_GT(v, 1.0) << "q=" << q;
    EXPECT_LE(v, 10.0) << "q=" << q;
  }
}

TEST(HistogramPercentileTest, AllEqualSamplesStayInOneBucket) {
  // 100 samples in the first bucket [0, 1]: estimates stay within it and
  // are monotone in the quantile.
  const std::vector<double> bounds{1.0, 10.0, 100.0};
  const std::vector<int64_t> counts{100, 0, 0, 0};
  double prev = -1.0;
  for (double q : {0.0, 0.25, 0.5, 0.95, 1.0}) {
    const double v = EstimateHistogramPercentile(bounds, counts, q);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
    EXPECT_GE(v, prev) << "not monotone at q=" << q;
    prev = v;
  }
}

TEST(HistogramPercentileTest, OverflowBucketClampsToLastFiniteBound) {
  // Everything in the +Inf overflow bucket: report the highest finite bound
  // rather than inventing an unbounded estimate.
  EXPECT_EQ(EstimateHistogramPercentile({1.0, 10.0}, {0, 0, 5}, 0.5), 10.0);
  EXPECT_EQ(EstimateHistogramPercentile({1.0, 10.0}, {0, 0, 5}, 0.99), 10.0);
}

TEST(HistogramPercentileTest, QuantileIsClamped) {
  const std::vector<double> bounds{1.0};
  const std::vector<int64_t> counts{4, 0};
  EXPECT_EQ(EstimateHistogramPercentile(bounds, counts, -0.5),
            EstimateHistogramPercentile(bounds, counts, 0.0));
  EXPECT_EQ(EstimateHistogramPercentile(bounds, counts, 1.5),
            EstimateHistogramPercentile(bounds, counts, 1.0));
}

TEST(HistogramPercentileTest, SingleBucketHistogramInterpolatesFromZero) {
  // Degenerate histogram with one finite bucket [0, 5]: estimates
  // interpolate linearly from the implicit 0 lower edge.
  const std::vector<double> bounds{5.0};
  const std::vector<int64_t> counts{4, 0};
  EXPECT_EQ(EstimateHistogramPercentile(bounds, counts, 0.0), 0.0);
  EXPECT_NEAR(EstimateHistogramPercentile(bounds, counts, 0.5), 2.5, 1e-12);
  EXPECT_NEAR(EstimateHistogramPercentile(bounds, counts, 1.0), 5.0, 1e-12);
}

TEST(HistogramPercentileTest, SingleBucketOverflowOnlyClampsToTheBound) {
  EXPECT_EQ(EstimateHistogramPercentile({5.0}, {0, 9}, 0.5), 5.0);
  EXPECT_EQ(EstimateHistogramPercentile({5.0}, {0, 9}, 0.99), 5.0);
}

TEST(HistogramPercentileTest, MalformedShapesReturnZero) {
  // No finite buckets, or a count vector that does not match bounds+1.
  EXPECT_EQ(EstimateHistogramPercentile({}, {7}, 0.5), 0.0);
  EXPECT_EQ(EstimateHistogramPercentile({1.0}, {7}, 0.5), 0.0);
  EXPECT_EQ(EstimateHistogramPercentile({1.0}, {1, 2, 3}, 0.5), 0.0);
}

TEST(HistogramPercentileTest, InterpolatesAcrossBuckets) {
  // 10 samples in (0,1], 10 in (1,2]: the median sits at the bucket edge
  // and p95 inside the second bucket.
  const std::vector<double> bounds{1.0, 2.0};
  const std::vector<int64_t> counts{10, 10, 0};
  EXPECT_NEAR(EstimateHistogramPercentile(bounds, counts, 0.5), 1.0, 1e-12);
  const double p95 = EstimateHistogramPercentile(bounds, counts, 0.95);
  EXPECT_GT(p95, 1.5);
  EXPECT_LE(p95, 2.0);
}

// ---------------------------------------------------------------------------
// RunReport serialization
// ---------------------------------------------------------------------------

RunReport MakeFullReport() {
  RunReport r{"unit_test"};
  r.SetConfig("scale", 0.5);
  r.SetConfig("items", static_cast<int64_t>(123));
  r.SetConfig("dataset", "simulation");
  r.SetCount("rows_scanned", 4567);
  r.SetCount("negative", -3);
  r.SetValue("rmse", 0.123456789012345);
  r.SetText("bellwether", "[1-8, MA]");
  r.AddPhase("build", 1.25);
  r.AddPhase("build", 0.75);  // merges: 2.0s, count 2
  r.AddPhase("scan", 0.004);
  return r;
}

TEST(RunReportTest, RoundTripIsBitIdentical) {
  RunReport r = MakeFullReport();
  // Snapshot a local registry so metrics sections round-trip too.
  MetricsRegistry registry;
  registry.GetCounter("test_total")->Increment(7);
  registry.GetGauge("test_gauge")->Set(2.5);
  auto* h = registry.GetHistogram("test_hist", {1.0, 10.0});
  h->Observe(0.5);
  h->Observe(5.0);
  h->Observe(50.0);
  r.CaptureMetrics(registry);
  r.CaptureEnvironment();

  const std::string json = r.ToJson();
  auto parsed = RunReport::FromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->ToJson(), json);

  // Parsed fields match the originals, not only the serialized bytes.
  EXPECT_EQ(parsed->name(), "unit_test");
  EXPECT_EQ(parsed->GetCount("rows_scanned"), 4567);
  EXPECT_EQ(parsed->GetValue("rmse"), 0.123456789012345);
  EXPECT_EQ(parsed->phases().at("build").count, 2);
  EXPECT_EQ(parsed->phases().at("build").wall_seconds, 2.0);
  EXPECT_EQ(parsed->metric_counters().at("test_total"), 7);
  EXPECT_EQ(parsed->metric_histograms().at("test_hist").count, 3);
}

TEST(RunReportTest, LogicalJsonRoundTripsAndExcludesTimingSections) {
  RunReport r = MakeFullReport();
  r.CaptureEnvironment();
  const std::string logical = r.LogicalJson();
  // Logical identity: no wall times, no environment, no metrics.
  EXPECT_EQ(logical.find("phases"), std::string::npos);
  EXPECT_EQ(logical.find("environment"), std::string::npos);
  EXPECT_EQ(logical.find("metrics"), std::string::npos);
  EXPECT_EQ(logical.find("peak_rss"), std::string::npos);
  EXPECT_NE(logical.find("\"config\""), std::string::npos);
  EXPECT_NE(logical.find("config_fingerprint"), std::string::npos);
  EXPECT_NE(logical.find("rows_scanned"), std::string::npos);

  auto parsed = RunReport::FromJson(logical);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->LogicalJson(), logical);
}

TEST(RunReportTest, FromJsonRejectsWrongSchemaOrVersion) {
  EXPECT_FALSE(RunReport::FromJson("{}").ok());
  EXPECT_FALSE(RunReport::FromJson("not json").ok());
  RunReport r{"x"};
  std::string json = r.ToJson();
  const size_t pos = json.find("bellwether.run_report");
  ASSERT_NE(pos, std::string::npos);
  json.replace(pos, 10, "otherthing");
  EXPECT_FALSE(RunReport::FromJson(json).ok());
}

TEST(RunReportTest, ConfigFingerprintIgnoresInsertionOrder) {
  RunReport a{"r"};
  a.SetConfig("alpha", 1.0);
  a.SetConfig("beta", "two");
  RunReport b{"r"};
  b.SetConfig("beta", "two");
  b.SetConfig("alpha", 1.0);
  EXPECT_EQ(a.ConfigFingerprint(), b.ConfigFingerprint());

  b.SetConfig("alpha", 2.0);
  EXPECT_NE(a.ConfigFingerprint(), b.ConfigFingerprint());
}

// ---------------------------------------------------------------------------
// benchdiff
// ---------------------------------------------------------------------------

RunReport TimedReport(double build_seconds) {
  RunReport r{"bench"};
  r.SetConfig("scale", 1.0);
  r.SetCount("rows", 100);
  r.AddPhase("build", build_seconds);
  r.AddPhase("tiny", 0.0001);
  return r;
}

TEST(BenchDiffTest, IdenticalReportsPass) {
  const RunReport r = TimedReport(1.0);
  const BenchDiffResult diff = CompareRunReports(r, r);
  EXPECT_FALSE(diff.failed);
  EXPECT_TRUE(diff.entries.empty()) << diff.Summary();
}

TEST(BenchDiffTest, TwoTimesSlowdownFails) {
  const BenchDiffResult diff =
      CompareRunReports(TimedReport(1.0), TimedReport(2.0));
  EXPECT_TRUE(diff.failed);
  ASSERT_EQ(diff.entries.size(), 1u) << diff.Summary();
  EXPECT_EQ(diff.entries[0].kind, BenchDiffKind::kRegression);
  EXPECT_EQ(diff.entries[0].key, "build");
  EXPECT_NEAR(diff.entries[0].ratio, 2.0, 1e-9);
  EXPECT_NE(diff.Summary().find("REGRESSION"), std::string::npos);
}

TEST(BenchDiffTest, SlowdownBelowThresholdPasses) {
  const BenchDiffResult diff =
      CompareRunReports(TimedReport(1.0), TimedReport(1.10));
  EXPECT_FALSE(diff.failed) << diff.Summary();
}

TEST(BenchDiffTest, NoiseFloorSuppressesMicroPhases) {
  // "tiny" doubles too (0.1ms -> 0.2ms) but stays under min_seconds in both
  // runs, so only phases above the floor can regress.
  RunReport old_run = TimedReport(1.0);
  RunReport new_run = TimedReport(1.0);
  new_run.AddPhase("tiny", 0.0001);  // now 2x the baseline's tiny phase
  const BenchDiffResult diff = CompareRunReports(old_run, new_run);
  EXPECT_FALSE(diff.failed) << diff.Summary();
}

TEST(BenchDiffTest, ImprovementIsReportedNotFailed) {
  const BenchDiffResult diff =
      CompareRunReports(TimedReport(2.0), TimedReport(1.0));
  EXPECT_FALSE(diff.failed);
  ASSERT_EQ(diff.entries.size(), 1u);
  EXPECT_EQ(diff.entries[0].kind, BenchDiffKind::kImprovement);
}

TEST(BenchDiffTest, CountDriftFailsOnlyWithTheOption) {
  RunReport old_run = TimedReport(1.0);
  RunReport new_run = TimedReport(1.0);
  new_run.SetCount("rows", 99);
  const BenchDiffResult soft = CompareRunReports(old_run, new_run);
  EXPECT_FALSE(soft.failed);
  ASSERT_EQ(soft.entries.size(), 1u);
  EXPECT_EQ(soft.entries[0].kind, BenchDiffKind::kCountDrift);

  BenchDiffOptions strict;
  strict.fail_on_count_drift = true;
  EXPECT_TRUE(CompareRunReports(old_run, new_run, strict).failed);
}

TEST(BenchDiffTest, PhasePresentInOnlyOneRunIsReported) {
  RunReport old_run = TimedReport(1.0);
  RunReport new_run = TimedReport(1.0);
  new_run.AddPhase("extra", 1.0);
  const BenchDiffResult diff = CompareRunReports(old_run, new_run);
  EXPECT_FALSE(diff.failed);
  ASSERT_EQ(diff.entries.size(), 1u);
  EXPECT_EQ(diff.entries[0].kind, BenchDiffKind::kPhaseOnlyInOne);
  EXPECT_EQ(diff.entries[0].key, "extra");
}

// ---------------------------------------------------------------------------
// Profile section and allocation drift
// ---------------------------------------------------------------------------

ReportProfile MakeProfileSection(int64_t build_calls) {
  ReportProfile p;
  p.period_us = 1000;
  p.total_samples = 10;
  p.dropped_samples = 1;
  p.self_samples = {{"hot_loop", 6}, {"other", 4}};
  p.alloc["build"] = {1 << 20, build_calls, build_calls};
  return p;
}

TEST(RunReportTest, ProfileSectionRoundTripsAndStaysOutOfLogicalJson) {
  RunReport r = MakeFullReport();
  r.set_profile(MakeProfileSection(1000));

  const std::string json = r.ToJson();
  EXPECT_NE(json.find("\"profile\""), std::string::npos);
  auto parsed = RunReport::FromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->ToJson(), json);
  EXPECT_EQ(parsed->profile(), r.profile());

  // Sample counts are timing, not logical identity.
  EXPECT_EQ(r.LogicalJson().find("profile"), std::string::npos);
  EXPECT_EQ(r.LogicalJson(), MakeFullReport().LogicalJson());
}

TEST(RunReportTest, EmptyProfileSectionIsOmittedFromToJson) {
  // A report written with profiling disabled keeps its historical shape.
  RunReport r = MakeFullReport();
  ASSERT_TRUE(r.profile().empty());
  EXPECT_EQ(r.ToJson().find("\"profile\""), std::string::npos);
}

TEST(RunReportTest, SummarizeProfileTakesTopNFramesAndAllocCounters) {
  Profile p;
  p.AddStack("phase;a", 5);
  p.AddStack("phase;b", 3);
  p.AddStack("phase;c", 1);
  p.set_period_us(2000);
  p.add_dropped_samples(4);
  std::map<std::string, HeapTracker::LabelStats> alloc;
  alloc["phase"] = {4096, 100, 90};

  const ReportProfile summary = SummarizeProfile(p, alloc, /*top_n=*/2);
  EXPECT_EQ(summary.period_us, 2000);
  EXPECT_EQ(summary.total_samples, 9);
  EXPECT_EQ(summary.dropped_samples, 4);
  ASSERT_EQ(summary.self_samples.size(), 2u) << "top_n must cap the table";
  EXPECT_EQ(summary.self_samples.at("a"), 5);
  EXPECT_EQ(summary.self_samples.at("b"), 3);
  ASSERT_TRUE(summary.alloc.count("phase"));
  EXPECT_EQ(summary.alloc.at("phase").bytes, 4096);
  EXPECT_EQ(summary.alloc.at("phase").calls, 100);
  EXPECT_EQ(summary.alloc.at("phase").frees, 90);
}

TEST(BenchDiffTest, AllocDriftIsReportedAndFailsOnlyWithTheOption) {
  RunReport old_run = TimedReport(1.0);
  old_run.set_profile(MakeProfileSection(1000));
  RunReport new_run = TimedReport(1.0);
  new_run.set_profile(MakeProfileSection(2000));

  const BenchDiffResult soft = CompareRunReports(old_run, new_run);
  EXPECT_FALSE(soft.failed);
  ASSERT_EQ(soft.entries.size(), 1u) << soft.Summary();
  EXPECT_EQ(soft.entries[0].kind, BenchDiffKind::kAllocDrift);
  EXPECT_EQ(soft.entries[0].key, "build");
  EXPECT_NEAR(soft.entries[0].ratio, 2.0, 1e-9);
  EXPECT_NE(soft.Summary().find("allocs"), std::string::npos);

  BenchDiffOptions strict;
  strict.fail_on_alloc_drift = true;
  EXPECT_TRUE(CompareRunReports(old_run, new_run, strict).failed);
}

TEST(BenchDiffTest, AllocDecreaseIsReportedButNeverFails) {
  // The gate is one-sided: an intentional alloc-count improvement (arena
  // reuse, batching) is reported for visibility but must not fail even
  // with fail_on_alloc_drift, so it re-baselines on the next upload.
  RunReport old_run = TimedReport(1.0);
  old_run.set_profile(MakeProfileSection(2000));
  RunReport new_run = TimedReport(1.0);
  new_run.set_profile(MakeProfileSection(500));

  BenchDiffOptions strict;
  strict.fail_on_alloc_drift = true;
  const BenchDiffResult diff = CompareRunReports(old_run, new_run, strict);
  ASSERT_EQ(diff.entries.size(), 1u) << diff.Summary();
  EXPECT_EQ(diff.entries[0].kind, BenchDiffKind::kAllocDrift);
  EXPECT_NEAR(diff.entries[0].ratio, 0.25, 1e-9);
  EXPECT_FALSE(diff.failed) << diff.Summary();
}

TEST(BenchDiffTest, AllocDriftBelowTheCallFloorIsIgnored) {
  // 10 -> 30 calls is 3x but both sit under kAllocDriftFloorCalls; phases
  // that barely allocate must not jitter the gate.
  RunReport old_run = TimedReport(1.0);
  old_run.set_profile(MakeProfileSection(10));
  RunReport new_run = TimedReport(1.0);
  new_run.set_profile(MakeProfileSection(30));
  const BenchDiffResult diff = CompareRunReports(old_run, new_run);
  EXPECT_TRUE(diff.entries.empty()) << diff.Summary();
}

TEST(BenchDiffTest, ToJsonCarriesVerdictAndEntries) {
  RunReport old_run = TimedReport(1.0);
  RunReport new_run = TimedReport(2.0);
  new_run.SetCount("rows", 99);
  const BenchDiffResult diff = CompareRunReports(old_run, new_run);
  ASSERT_TRUE(diff.failed);

  const std::string json = diff.ToJson();
  EXPECT_NE(json.find("\"failed\":true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"schema_mismatch\":false"), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"REGRESSION\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"kind\":\"count-drift\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"key\":\"build\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Builder attachments and the thread-count identity contract
// ---------------------------------------------------------------------------

datagen::SimulationDataset MakeSim(uint64_t seed) {
  datagen::SimulationConfig config;
  config.num_items = 150;
  config.generator_tree_nodes = 7;
  config.noise = 0.2;
  config.num_windows = 3;
  config.location_fanouts = {2, 2};
  config.seed = seed;
  return datagen::GenerateSimulation(config);
}

TEST(BuilderReportTest, SearchAttachesReportWithLogicalTelemetry) {
  datagen::SimulationDataset sim = MakeSim(61);
  storage::MemoryTrainingData source(sim.sets);
  core::BasicSearchOptions options;
  auto result = core::RunBasicBellwetherSearch(&source, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const RunReport& r = result->report;
  EXPECT_EQ(r.name(), "basic_search");
  EXPECT_EQ(r.GetCount("search.regions_scored"),
            result->telemetry.regions_scored);
  EXPECT_EQ(r.GetCount("search.rows_scanned"), result->telemetry.rows_scanned);
  EXPECT_FALSE(r.config().count("exec.num_threads"))
      << "thread counts must not enter the logical config";
  EXPECT_TRUE(r.phases().count("search.scan"));
}

TEST(BuilderReportTest, TreeAndCubeAttachReports) {
  datagen::SimulationDataset sim = MakeSim(63);
  storage::MemoryTrainingData tree_src(sim.sets);
  core::TreeBuildConfig tree_cfg;
  tree_cfg.split_columns = sim.feature_columns;
  tree_cfg.min_items = 25;
  tree_cfg.max_depth = 3;
  tree_cfg.min_examples_per_model = 8;
  auto tree =
      core::BuildBellwetherTreeRainForest(&tree_src, sim.items, tree_cfg);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  EXPECT_EQ(tree->build_report().name(), "tree_rainforest");
  EXPECT_EQ(tree->build_report().GetCount("tree.nodes_created"),
            static_cast<int64_t>(tree->nodes().size()));

  auto subsets =
      core::ItemSubsetSpace::Create(sim.items, sim.item_hierarchies);
  ASSERT_TRUE(subsets.ok());
  core::CubeBuildConfig cube_cfg;
  cube_cfg.min_subset_size = 20;
  cube_cfg.min_examples_per_model = 8;
  storage::MemoryTrainingData cube_src(sim.sets);
  auto cube =
      core::BuildBellwetherCubeSingleScan(&cube_src, *subsets, cube_cfg);
  ASSERT_TRUE(cube.ok()) << cube.status().ToString();
  EXPECT_EQ(cube->build_report().name(), "cube_single_scan");
  EXPECT_EQ(cube->build_report().GetCount("cube.cells_materialized"),
            static_cast<int64_t>(cube->cells().size()));
}

TEST(BuilderReportTest, LogicalJsonByteIdenticalAcrossThreadCounts) {
  datagen::SimulationDataset sim = MakeSim(65);
  auto subsets =
      core::ItemSubsetSpace::Create(sim.items, sim.item_hierarchies);
  ASSERT_TRUE(subsets.ok());

  std::string serial_search, serial_tree, serial_cube;
  for (int32_t threads : {1, 3}) {
    SCOPED_TRACE("num_threads=" + std::to_string(threads));

    core::BasicSearchOptions search_opts;
    search_opts.exec.num_threads = threads;
    storage::MemoryTrainingData search_src(sim.sets);
    auto search = core::RunBasicBellwetherSearch(&search_src, search_opts);
    ASSERT_TRUE(search.ok());

    core::TreeBuildConfig tree_cfg;
    tree_cfg.split_columns = sim.feature_columns;
    tree_cfg.min_items = 25;
    tree_cfg.max_depth = 3;
    tree_cfg.min_examples_per_model = 8;
    tree_cfg.exec.num_threads = threads;
    storage::MemoryTrainingData tree_src(sim.sets);
    auto tree =
        core::BuildBellwetherTreeRainForest(&tree_src, sim.items, tree_cfg);
    ASSERT_TRUE(tree.ok());

    core::CubeBuildConfig cube_cfg;
    cube_cfg.min_subset_size = 20;
    cube_cfg.min_examples_per_model = 8;
    cube_cfg.exec.num_threads = threads;
    storage::MemoryTrainingData cube_src(sim.sets);
    auto cube =
        core::BuildBellwetherCubeSingleScan(&cube_src, *subsets, cube_cfg);
    ASSERT_TRUE(cube.ok());

    if (threads == 1) {
      serial_search = search->report.LogicalJson();
      serial_tree = tree->build_report().LogicalJson();
      serial_cube = cube->build_report().LogicalJson();
      EXPECT_FALSE(serial_search.empty());
    } else {
      EXPECT_EQ(search->report.LogicalJson(), serial_search);
      EXPECT_EQ(tree->build_report().LogicalJson(), serial_tree);
      EXPECT_EQ(cube->build_report().LogicalJson(), serial_cube);
    }
  }
}

}  // namespace
}  // namespace bellwether::obs
