#include <gtest/gtest.h>

#include <cmath>

#include "core/bellwether_tree.h"
#include "core/eval_util.h"
#include "datagen/simulation.h"
#include "storage/training_data.h"

namespace bellwether::core {
namespace {

datagen::SimulationDataset MakeSim(int32_t tree_nodes, double noise,
                                   uint64_t seed, int32_t items = 240) {
  datagen::SimulationConfig config;
  config.num_items = items;
  config.generator_tree_nodes = tree_nodes;
  config.noise = noise;
  config.num_windows = 3;
  config.location_fanouts = {2, 2};
  config.seed = seed;
  return datagen::GenerateSimulation(config);
}

TreeBuildConfig MakeTreeConfig(const datagen::SimulationDataset& sim) {
  TreeBuildConfig config;
  config.split_columns = sim.feature_columns;
  config.min_items = 40;
  config.max_depth = 4;
  config.min_examples_per_model = 8;
  return config;
}

TEST(ItemSplitFeaturesTest, NumericAndCategoricalColumns) {
  table::Table items(table::Schema({{"id", table::DataType::kInt64},
                                    {"x", table::DataType::kDouble},
                                    {"c", table::DataType::kString}}));
  items.AppendRow({table::Value(int64_t{1}), table::Value(1.5),
                   table::Value("a")});
  items.AppendRow({table::Value(int64_t{2}), table::Value(2.5),
                   table::Value("b")});
  items.AppendRow({table::Value(int64_t{3}), table::Value(3.5),
                   table::Value("a")});
  auto feats = ItemSplitFeatures::Create(items, {"x", "c"});
  ASSERT_TRUE(feats.ok());
  EXPECT_TRUE((*feats)->IsNumeric(0));
  EXPECT_FALSE((*feats)->IsNumeric(1));
  EXPECT_DOUBLE_EQ((*feats)->NumericValue(0, 2), 3.5);
  EXPECT_EQ((*feats)->NumCategories(1), 2);
  EXPECT_EQ((*feats)->CategoryOf(1, 0), (*feats)->CategoryOf(1, 2));
  EXPECT_NE((*feats)->CategoryOf(1, 0), (*feats)->CategoryOf(1, 1));
  EXPECT_FALSE(ItemSplitFeatures::Create(items, {"missing"}).ok());
}

TEST(SplitCriterionTest, PartitionRouting) {
  table::Table items(table::Schema({{"x", table::DataType::kDouble}}));
  items.AppendRow({table::Value(1.0)});
  items.AppendRow({table::Value(5.0)});
  auto feats = ItemSplitFeatures::Create(items, {"x"});
  ASSERT_TRUE(feats.ok());
  SplitCriterion c;
  c.column = 0;
  c.is_numeric = true;
  c.threshold = 3.0;
  c.num_partitions = 2;
  EXPECT_EQ(c.PartitionOf(**feats, 0), 0);
  EXPECT_EQ(c.PartitionOf(**feats, 1), 1);
}

// Lemma 1: the RainForest builder produces exactly the tree the naive
// builder produces, across generator complexities and noise levels.
class Lemma1Test
    : public ::testing::TestWithParam<std::tuple<int32_t, double>> {};

void ExpectTreesEqual(const BellwetherTree& a, const BellwetherTree& b) {
  ASSERT_EQ(a.nodes().size(), b.nodes().size());
  for (size_t i = 0; i < a.nodes().size(); ++i) {
    const TreeNode& na = a.nodes()[i];
    const TreeNode& nb = b.nodes()[i];
    EXPECT_EQ(na.depth, nb.depth) << "node " << i;
    EXPECT_EQ(na.num_items, nb.num_items) << "node " << i;
    EXPECT_EQ(na.has_model, nb.has_model) << "node " << i;
    EXPECT_EQ(na.region, nb.region) << "node " << i;
    if (na.has_model) {
      EXPECT_DOUBLE_EQ(na.error, nb.error) << "node " << i;
    }
    EXPECT_EQ(na.children, nb.children) << "node " << i;
    if (!na.is_leaf()) {
      EXPECT_EQ(na.split.column, nb.split.column) << "node " << i;
      EXPECT_EQ(na.split.is_numeric, nb.split.is_numeric) << "node " << i;
      EXPECT_DOUBLE_EQ(na.split.threshold, nb.split.threshold)
          << "node " << i;
    }
  }
}

TEST_P(Lemma1Test, RainForestEqualsNaive) {
  const auto [nodes, noise] = GetParam();
  datagen::SimulationDataset sim = MakeSim(nodes, noise, 100 + nodes);
  storage::MemoryTrainingData source(sim.sets);
  const TreeBuildConfig config = MakeTreeConfig(sim);
  auto naive = BuildBellwetherTreeNaive(&source, sim.items, config);
  auto rf = BuildBellwetherTreeRainForest(&source, sim.items, config);
  ASSERT_TRUE(naive.ok()) << naive.status().ToString();
  ASSERT_TRUE(rf.ok()) << rf.status().ToString();
  ExpectTreesEqual(*naive, *rf);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, Lemma1Test,
    ::testing::Values(std::make_tuple(3, 0.2), std::make_tuple(7, 0.2),
                      std::make_tuple(15, 0.5), std::make_tuple(7, 1.0)));

TEST(TreeScanCountTest, RainForestScansOncePerLevel) {
  datagen::SimulationDataset sim = MakeSim(7, 0.3, 3);
  storage::MemoryTrainingData source(sim.sets);
  const TreeBuildConfig config = MakeTreeConfig(sim);
  auto rf = BuildBellwetherTreeRainForest(&source, sim.items, config);
  ASSERT_TRUE(rf.ok());
  EXPECT_EQ(source.io_stats().sequential_scans, rf->NumLevels());
}

TEST(TreeScanCountTest, NaiveReadsManyMoreRegions) {
  datagen::SimulationDataset sim = MakeSim(7, 0.3, 3);
  const TreeBuildConfig config = MakeTreeConfig(sim);
  storage::MemoryTrainingData naive_src(sim.sets);
  auto naive = BuildBellwetherTreeNaive(&naive_src, sim.items, config);
  ASSERT_TRUE(naive.ok());
  storage::MemoryTrainingData rf_src(sim.sets);
  auto rf = BuildBellwetherTreeRainForest(&rf_src, sim.items, config);
  ASSERT_TRUE(rf.ok());
  EXPECT_GT(naive_src.io_stats().region_reads,
            2 * rf_src.io_stats().region_reads);
}

TEST(TreeTest, TreeSplitsWhenBellwetherDistributionIsComplex) {
  // 15-node generator, low noise: one global region cannot explain all
  // items, so the tree must actually split.
  datagen::SimulationDataset sim = MakeSim(15, 0.1, 11);
  storage::MemoryTrainingData source(sim.sets);
  auto tree =
      BuildBellwetherTreeRainForest(&source, sim.items, MakeTreeConfig(sim));
  ASSERT_TRUE(tree.ok());
  EXPECT_GT(tree->NumLevels(), 1);
  EXPECT_GT(tree->NumLeaves(), 1);
}

TEST(TreeTest, PredictionsBeatGlobalModelOnComplexData) {
  datagen::SimulationDataset sim = MakeSim(15, 0.1, 13);
  storage::MemoryTrainingData source(sim.sets);
  const TreeBuildConfig config = MakeTreeConfig(sim);
  auto tree = BuildBellwetherTreeRainForest(&source, sim.items, config);
  ASSERT_TRUE(tree.ok());
  const RegionFeatureLookup lookup(&sim.sets);

  // Tree predictions.
  double tree_sse = 0.0;
  int64_t n = 0;
  for (int32_t i = 0; i < static_cast<int32_t>(sim.targets.size()); ++i) {
    auto p = tree->PredictItem(i, lookup);
    if (!p.ok()) continue;
    tree_sse += (*p - sim.targets[i]) * (*p - sim.targets[i]);
    ++n;
  }
  ASSERT_GT(n, 0);
  // Root-only (global bellwether) predictions.
  const TreeNode& root = tree->root();
  ASSERT_TRUE(root.has_model);
  double root_sse = 0.0;
  int64_t rn = 0;
  for (int32_t i = 0; i < static_cast<int32_t>(sim.targets.size()); ++i) {
    const double* x = lookup.Find(root.region, i);
    if (x == nullptr) continue;
    const double e = root.model.Predict(x) - sim.targets[i];
    root_sse += e * e;
    ++rn;
  }
  ASSERT_GT(rn, 0);
  EXPECT_LT(std::sqrt(tree_sse / n), 0.8 * std::sqrt(root_sse / rn));
}

TEST(TreeTest, RouteFallsBackToAncestorWithModel) {
  datagen::SimulationDataset sim = MakeSim(7, 0.3, 17);
  storage::MemoryTrainingData source(sim.sets);
  auto tree =
      BuildBellwetherTreeRainForest(&source, sim.items, MakeTreeConfig(sim));
  ASSERT_TRUE(tree.ok());
  for (int32_t i = 0; i < 50; ++i) {
    const int32_t node = tree->RouteItem(i);
    ASSERT_GE(node, 0);
    EXPECT_TRUE(tree->nodes()[node].has_model);
  }
}

TEST(TreeTest, MinItemsStopsSplitting) {
  datagen::SimulationDataset sim = MakeSim(15, 0.1, 19);
  storage::MemoryTrainingData source(sim.sets);
  TreeBuildConfig config = MakeTreeConfig(sim);
  config.min_items = 10000;  // larger than the item count
  auto tree = BuildBellwetherTreeRainForest(&source, sim.items, config);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->nodes().size(), 1u);
  EXPECT_TRUE(tree->root().is_leaf());
  EXPECT_TRUE(tree->root().has_model);
}

TEST(TreeTest, MaxDepthBoundsLevels) {
  datagen::SimulationDataset sim = MakeSim(31, 0.05, 23);
  storage::MemoryTrainingData source(sim.sets);
  TreeBuildConfig config = MakeTreeConfig(sim);
  config.max_depth = 2;
  config.min_items = 10;
  auto tree = BuildBellwetherTreeRainForest(&source, sim.items, config);
  ASSERT_TRUE(tree.ok());
  EXPECT_LE(tree->NumLevels(), 3);
}

TEST(TreeTest, ItemMaskShrinksRoot) {
  datagen::SimulationDataset sim = MakeSim(7, 0.3, 29);
  storage::MemoryTrainingData source(sim.sets);
  std::vector<uint8_t> mask(sim.targets.size(), 0);
  for (size_t i = 0; i < mask.size() / 2; ++i) mask[i] = 1;
  auto tree = BuildBellwetherTreeRainForest(&source, sim.items,
                                            MakeTreeConfig(sim), &mask);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->root().num_items,
            static_cast<int32_t>(sim.targets.size() / 2));
}

TEST(TreeTest, PruningNeverIncreasesNodeCountAndKeepsRoot) {
  datagen::SimulationDataset sim = MakeSim(15, 0.8, 31);
  storage::MemoryTrainingData source(sim.sets);
  auto tree =
      BuildBellwetherTreeRainForest(&source, sim.items, MakeTreeConfig(sim));
  ASSERT_TRUE(tree.ok());
  const int32_t leaves_before = tree->NumLeaves();
  // A huge complexity charge prunes everything back to the root.
  const int32_t pruned = PruneBellwetherTree(&*tree, 1e18);
  EXPECT_GE(pruned, 0);
  EXPECT_LE(tree->NumLeaves(), leaves_before);
  EXPECT_TRUE(tree->root().is_leaf());
}

TEST(TreeTest, ToStringMentionsSplits) {
  datagen::SimulationDataset sim = MakeSim(15, 0.1, 37);
  storage::MemoryTrainingData source(sim.sets);
  auto tree =
      BuildBellwetherTreeRainForest(&source, sim.items, MakeTreeConfig(sim));
  ASSERT_TRUE(tree.ok());
  const std::string s = tree->ToString();
  EXPECT_NE(s.find("region="), std::string::npos);
}

}  // namespace
}  // namespace bellwether::core
