#include <gtest/gtest.h>


#include <cmath>
#include "core/classification_cube.h"
#include "core/classification_search.h"
#include "core/eval_util.h"
#include "core/training_data_gen.h"
#include "datagen/mail_order.h"
#include "datagen/simulation.h"
#include "storage/training_data.h"

namespace bellwether::core {
namespace {

class ClassificationCubeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::MailOrderConfig config;
    config.num_items = 120;
    config.density = 1.0;
    config.seed = 301;
    dataset_ =
        new datagen::MailOrderDataset(datagen::GenerateMailOrder(config));
    spec_ = new BellwetherSpec(dataset_->MakeSpec(50.0, 0.5));
    auto data = GenerateTrainingDataInMemory(*spec_);
    ASSERT_TRUE(data.ok());
    data_ = new GeneratedTrainingData(std::move(data).value());
    auto subsets = ItemSubsetSpace::Create(dataset_->items,
                                           dataset_->item_hierarchies);
    ASSERT_TRUE(subsets.ok());
    subsets_ = new std::shared_ptr<const ItemSubsetSpace>(*subsets);
  }
  static void TearDownTestSuite() {
    delete subsets_;
    delete data_;
    delete spec_;
    delete dataset_;
  }
  static ClassificationCubeConfig MakeConfig() {
    ClassificationCubeConfig config;
    config.labeler = ThresholdLabeler(MedianTarget(data_->profile.targets));
    config.num_classes = 2;
    config.min_subset_size = 25;
    config.min_examples_per_model = 15;
    return config;
  }

  static datagen::MailOrderDataset* dataset_;
  static BellwetherSpec* spec_;
  static GeneratedTrainingData* data_;
  static std::shared_ptr<const ItemSubsetSpace>* subsets_;
};

datagen::MailOrderDataset* ClassificationCubeTest::dataset_ = nullptr;
BellwetherSpec* ClassificationCubeTest::spec_ = nullptr;
GeneratedTrainingData* ClassificationCubeTest::data_ = nullptr;
std::shared_ptr<const ItemSubsetSpace>* ClassificationCubeTest::subsets_ =
    nullptr;

TEST_F(ClassificationCubeTest, OptimizedMatchesNaive) {
  storage::MemoryTrainingData s1(*data_->memory_sets()),
      s2(*data_->memory_sets());
  const auto config = MakeConfig();
  auto naive = BuildClassificationCubeNaive(&s1, *subsets_, config);
  auto opt = BuildClassificationCubeOptimized(&s2, *subsets_, config);
  ASSERT_TRUE(naive.ok()) << naive.status().ToString();
  ASSERT_TRUE(opt.ok()) << opt.status().ToString();
  ASSERT_EQ(naive->cells().size(), opt->cells().size());
  for (size_t i = 0; i < naive->cells().size(); ++i) {
    const auto& a = naive->cells()[i];
    const auto& b = opt->cells()[i];
    EXPECT_EQ(a.subset, b.subset);
    EXPECT_EQ(a.subset_size, b.subset_size);
    EXPECT_EQ(a.has_model, b.has_model) << "cell " << i;
    if (a.has_model && b.has_model) {
      // Misclassification counts are integers over identical rows: the
      // errors must agree almost exactly; region ties may break either way
      // when two regions share the same error, so compare errors by region.
      EXPECT_NEAR(a.error, b.error, 1e-9) << "cell " << i;
    }
  }
}

TEST_F(ClassificationCubeTest, OptimizedScansOnceNaiveScansPerSubset) {
  storage::MemoryTrainingData s1(*data_->memory_sets()),
      s2(*data_->memory_sets());
  const auto config = MakeConfig();
  auto opt = BuildClassificationCubeOptimized(&s1, *subsets_, config);
  ASSERT_TRUE(opt.ok());
  EXPECT_EQ(s1.io_stats().sequential_scans, 1);
  auto naive = BuildClassificationCubeNaive(&s2, *subsets_, config);
  ASSERT_TRUE(naive.ok());
  EXPECT_EQ(s2.io_stats().region_reads,
            static_cast<int64_t>(naive->cells().size() * data_->memory_sets()->size()));
}

TEST_F(ClassificationCubeTest, RootCellFindsPlantedState) {
  storage::MemoryTrainingData source(*data_->memory_sets());
  auto cube =
      BuildClassificationCubeOptimized(&source, *subsets_, MakeConfig());
  ASSERT_TRUE(cube.ok());
  const auto* root =
      cube->FindCell((*subsets_)->space().Encode({0, 0}));
  ASSERT_NE(root, nullptr);
  ASSERT_TRUE(root->has_model);
  EXPECT_EQ(spec_->space->Decode(root->region)[1],
            dataset_->planted_state_node)
      << spec_->space->RegionLabel(root->region);
  EXPECT_LT(root->error, 0.25);  // far better than the 0.5 coin flip
}

TEST_F(ClassificationCubeTest, PredictsHeldOutLabelsAboveChance) {
  storage::MemoryTrainingData source(*data_->memory_sets());
  const auto config = MakeConfig();
  auto cube = BuildClassificationCubeOptimized(&source, *subsets_, config);
  ASSERT_TRUE(cube.ok());
  const RegionFeatureLookup lookup(data_->memory_sets());
  int64_t correct = 0, total = 0;
  for (int32_t i = 0; i < static_cast<int32_t>(data_->profile.targets.size()); ++i) {
    if (std::isnan(data_->profile.targets[i])) continue;
    auto p = cube->PredictItem(i, lookup);
    if (!p.ok()) continue;
    ++total;
    if (*p == config.labeler(data_->profile.targets[i])) ++correct;
  }
  ASSERT_GT(total, 80);
  EXPECT_GT(static_cast<double>(correct) / total, 0.7);
}

TEST_F(ClassificationCubeTest, ValidatesConfig) {
  storage::MemoryTrainingData source(*data_->memory_sets());
  ClassificationCubeConfig config;  // no labeler
  EXPECT_FALSE(
      BuildClassificationCubeOptimized(&source, *subsets_, config).ok());
}

}  // namespace
}  // namespace bellwether::core
