// End-to-end integration tests: whole pipelines across modules, including
// the disk-backed path (generate -> spill -> search/tree/cube -> predict).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "core/basic_search.h"
#include "core/bellwether_cube.h"
#include "core/bellwether_tree.h"
#include "core/eval_util.h"
#include "core/item_centric_eval.h"
#include "core/training_data_gen.h"
#include "datagen/book_store.h"
#include "datagen/mail_order.h"
#include "datagen/simulation.h"
#include "storage/training_data.h"

namespace bellwether::core {
namespace {

TEST(IntegrationTest, MailOrderSpilledPipeline) {
  // Generate -> write to a spill file -> run the basic search from disk ->
  // verify the same result as the in-memory source.
  datagen::MailOrderConfig config;
  config.num_items = 80;
  config.density = 0.8;
  config.seed = 3;
  const datagen::MailOrderDataset dataset = datagen::GenerateMailOrder(config);
  const BellwetherSpec spec = dataset.MakeSpec(50.0, 0.4);
  auto data = GenerateTrainingDataInMemory(spec);
  ASSERT_TRUE(data.ok());

  const std::string path = ::testing::TempDir() + "/integration_mail.spill";
  {
    auto writer = storage::SpillFileWriter::Create(path);
    ASSERT_TRUE(writer.ok());
    for (const auto& set : *data->memory_sets()) {
      ASSERT_TRUE((*writer)->Append(set).ok());
    }
    ASSERT_TRUE((*writer)->Finish().ok());
  }
  auto disk = storage::SpilledTrainingData::Open(path);
  ASSERT_TRUE(disk.ok());
  storage::TrainingDataSource& memory = *data->source;

  BasicSearchOptions options;
  options.estimate = regression::ErrorEstimate::kTrainingSet;
  options.min_examples = 20;
  auto from_disk = RunBasicBellwetherSearch(disk->get(), options);
  auto from_memory = RunBasicBellwetherSearch(&memory, options);
  ASSERT_TRUE(from_disk.ok());
  ASSERT_TRUE(from_memory.ok());
  ASSERT_TRUE(from_disk->found());
  EXPECT_EQ(from_disk->bellwether, from_memory->bellwether);
  EXPECT_DOUBLE_EQ(from_disk->error.rmse, from_memory->error.rmse);
  std::remove(path.c_str());
}

TEST(IntegrationTest, TreeLemmaHoldsOnRealPipelineData) {
  // Lemma 1 verified on cube-generated mail-order training data (not just
  // the synthetic simulation sets).
  datagen::MailOrderConfig config;
  config.num_items = 80;
  config.density = 0.8;
  config.seed = 5;
  const datagen::MailOrderDataset dataset = datagen::GenerateMailOrder(config);
  const BellwetherSpec spec = dataset.MakeSpec(40.0, 0.4);
  auto data = GenerateTrainingDataInMemory(spec);
  ASSERT_TRUE(data.ok());
  storage::TrainingDataSource& source = *data->source;
  TreeBuildConfig tree_config;
  tree_config.split_columns = {"Category", "RDExpense"};
  tree_config.min_items = 25;
  tree_config.max_depth = 3;
  tree_config.max_numeric_split_points = 5;
  tree_config.min_examples_per_model = 10;
  auto naive = BuildBellwetherTreeNaive(&source, dataset.items, tree_config);
  auto rf =
      BuildBellwetherTreeRainForest(&source, dataset.items, tree_config);
  ASSERT_TRUE(naive.ok());
  ASSERT_TRUE(rf.ok());
  ASSERT_EQ(naive->nodes().size(), rf->nodes().size());
  for (size_t i = 0; i < naive->nodes().size(); ++i) {
    EXPECT_EQ(naive->nodes()[i].region, rf->nodes()[i].region);
    EXPECT_EQ(naive->nodes()[i].children, rf->nodes()[i].children);
  }
}

TEST(IntegrationTest, CubeLemmaHoldsOnRealPipelineData) {
  datagen::MailOrderConfig config;
  config.num_items = 80;
  config.density = 0.8;
  config.seed = 7;
  const datagen::MailOrderDataset dataset = datagen::GenerateMailOrder(config);
  const BellwetherSpec spec = dataset.MakeSpec(40.0, 0.4);
  auto data = GenerateTrainingDataInMemory(spec);
  ASSERT_TRUE(data.ok());
  storage::TrainingDataSource& source = *data->source;
  auto subsets =
      ItemSubsetSpace::Create(dataset.items, dataset.item_hierarchies);
  ASSERT_TRUE(subsets.ok());
  CubeBuildConfig cube_config;
  cube_config.min_subset_size = 15;
  cube_config.min_examples_per_model = 10;
  cube_config.compute_cv_stats = false;
  auto naive = BuildBellwetherCubeNaive(&source, *subsets, cube_config);
  auto scan = BuildBellwetherCubeSingleScan(&source, *subsets, cube_config);
  auto opt = BuildBellwetherCubeOptimized(&source, *subsets, cube_config);
  ASSERT_TRUE(naive.ok());
  ASSERT_TRUE(scan.ok());
  ASSERT_TRUE(opt.ok());
  ASSERT_EQ(naive->cells().size(), scan->cells().size());
  ASSERT_EQ(scan->cells().size(), opt->cells().size());
  for (size_t i = 0; i < naive->cells().size(); ++i) {
    EXPECT_EQ(naive->cells()[i].region, scan->cells()[i].region);
    if (naive->cells()[i].has_model && opt->cells()[i].has_model) {
      EXPECT_NEAR(naive->cells()[i].error, opt->cells()[i].error,
                  1e-6 * (1.0 + naive->cells()[i].error));
    }
  }
}

TEST(IntegrationTest, SimulationTreeRecoversPlantedRegions) {
  // On low-noise simulated data, the tree's leaf regions should mostly be
  // the generator's planted bellwether regions.
  datagen::SimulationConfig config;
  config.num_items = 400;
  config.generator_tree_nodes = 7;
  config.noise = 0.05;
  config.num_windows = 3;
  config.location_fanouts = {2, 2};
  config.seed = 13;
  const datagen::SimulationDataset sim = datagen::GenerateSimulation(config);
  storage::MemoryTrainingData source(sim.sets);
  TreeBuildConfig tree_config;
  tree_config.split_columns = sim.feature_columns;
  tree_config.min_items = 60;
  tree_config.max_depth = 4;
  tree_config.min_examples_per_model = 10;
  auto tree = BuildBellwetherTreeRainForest(&source, sim.items, tree_config);
  ASSERT_TRUE(tree.ok());
  int32_t match = 0, total = 0;
  for (int32_t i = 0; i < 400; ++i) {
    const int32_t node = tree->RouteItem(i);
    if (node < 0) continue;
    ++total;
    if (tree->nodes()[node].region == sim.true_region_of_item[i]) ++match;
  }
  ASSERT_GT(total, 300);
  EXPECT_GT(static_cast<double>(match) / total, 0.7);
}

TEST(IntegrationTest, BookStoreFullPipelineRuns) {
  datagen::BookStoreConfig config;
  config.num_books = 60;
  config.seed = 17;
  const datagen::BookStoreDataset dataset = datagen::GenerateBookStore(config);
  const BellwetherSpec spec = dataset.MakeSpec(150.0, 0.3);
  auto data = GenerateTrainingDataInMemory(spec);
  ASSERT_TRUE(data.ok());
  ASSERT_GT(data->source->num_region_sets(), 0u);
  storage::TrainingDataSource& source = *data->source;
  BasicSearchOptions options;
  options.estimate = regression::ErrorEstimate::kCrossValidation;
  options.min_examples = 15;
  auto result = RunBasicBellwetherSearch(&source, options);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->found());
  // The negative dataset: a visible share of regions stays
  // indistinguishable from the winner (cf. the near-zero fractions of the
  // planted mail-order dataset).
  EXPECT_GT(result->FractionIndistinguishable(0.99), 0.02);
}

TEST(IntegrationTest, PredictionsConsistentAcrossSourceKinds) {
  // Cube predictions computed against spilled data match the in-memory ones.
  datagen::SimulationConfig config;
  config.num_items = 150;
  config.generator_tree_nodes = 7;
  config.num_windows = 3;
  config.location_fanouts = {2};
  config.seed = 19;
  const datagen::SimulationDataset sim = datagen::GenerateSimulation(config);
  auto subsets = ItemSubsetSpace::Create(sim.items, sim.item_hierarchies);
  ASSERT_TRUE(subsets.ok());
  CubeBuildConfig cube_config;
  cube_config.min_subset_size = 20;
  cube_config.min_examples_per_model = 10;
  cube_config.compute_cv_stats = true;

  storage::MemoryTrainingData memory(sim.sets);
  auto from_memory =
      BuildBellwetherCubeOptimized(&memory, *subsets, cube_config);
  ASSERT_TRUE(from_memory.ok());

  const std::string path = ::testing::TempDir() + "/integration_sim.spill";
  {
    auto writer = storage::SpillFileWriter::Create(path);
    ASSERT_TRUE(writer.ok());
    for (const auto& set : sim.sets) ASSERT_TRUE((*writer)->Append(set).ok());
    ASSERT_TRUE((*writer)->Finish().ok());
  }
  auto disk = storage::SpilledTrainingData::Open(path);
  ASSERT_TRUE(disk.ok());
  auto from_disk =
      BuildBellwetherCubeOptimized(disk->get(), *subsets, cube_config);
  ASSERT_TRUE(from_disk.ok());

  const RegionFeatureLookup lookup(&sim.sets);
  for (int32_t i = 0; i < 20; ++i) {
    auto a = from_memory->PredictItem(i, lookup);
    auto b = from_disk->PredictItem(i, lookup);
    ASSERT_EQ(a.ok(), b.ok());
    if (a.ok()) {
      EXPECT_DOUBLE_EQ(a->value, b->value);
    }
  }
  std::remove(path.c_str());
}

TEST(IntegrationTest, SlidingWindowsFindMidYearBellwether) {
  // A signal that only exists in months 3-4 of one state: with sliding
  // windows the search can return the mid-year region [3-4, WI], which the
  // paper's incremental windows cannot even express.
  olap::HierarchicalDimension location("Location", "All");
  const olap::NodeId us = location.AddNode("US", location.root());
  const olap::NodeId wi = location.AddNode("WI", us);
  const olap::NodeId md = location.AddNode("MD", us);
  std::vector<olap::Dimension> dims;
  dims.emplace_back(
      olap::IntervalDimension("Month", 6, olap::WindowKind::kSliding));
  dims.emplace_back(location);
  olap::RegionSpace space(std::move(dims));

  table::Table fact(table::Schema({{"Month", table::DataType::kInt64},
                                   {"Location", table::DataType::kInt64},
                                   {"ItemID", table::DataType::kInt64},
                                   {"Profit", table::DataType::kDouble}}));
  table::Table items(table::Schema({{"ItemID", table::DataType::kInt64}}));
  Rng rng(4);
  for (int64_t id = 1; id <= 50; ++id) {
    items.AppendRow({table::Value(id)});
    const double total = rng.NextDouble(100, 1000);
    for (int64_t m = 1; m <= 6; ++m) {
      for (olap::NodeId state : {wi, md}) {
        // WI months 3-4 carry a clean 10% preview of the total; everything
        // else is item-independent noise.
        const bool signal = state == wi && (m == 3 || m == 4);
        const double profit =
            signal ? 0.05 * total * (1.0 + 0.01 * rng.NextGaussian())
                   : rng.NextDouble(10, 60);
        fact.AppendRow({table::Value(m),
                        table::Value(static_cast<int64_t>(state)),
                        table::Value(id), table::Value(profit)});
      }
    }
  }
  std::vector<double> cell_costs(space.NumFinestCells(), 1.0);
  auto cost = olap::CostModel::Create(&space, cell_costs);
  ASSERT_TRUE(cost.ok());

  BellwetherSpec spec;
  spec.space = &space;
  spec.fact = &fact;
  spec.item_id_column = "ItemID";
  spec.dimension_columns = {"Month", "Location"};
  spec.item_table = &items;
  spec.item_table_id_column = "ItemID";
  spec.regional_features = {
      {FeatureQuery::Kind::kFactMeasure, table::AggFn::kSum,
       "RegionalProfit", "Profit", "", ""},
  };
  spec.target_fn = table::AggFn::kSum;
  spec.target_column = "Profit";
  spec.cost = &*cost;
  spec.budget = 2.0;  // at most two cells: forces small windows
  spec.min_coverage = 0.9;

  auto data = GenerateTrainingDataInMemory(spec);
  ASSERT_TRUE(data.ok()) << data.status().ToString();
  storage::TrainingDataSource& source = *data->source;
  BasicSearchOptions options;
  options.estimate = regression::ErrorEstimate::kCrossValidation;
  options.min_examples = 20;
  auto result = RunBasicBellwetherSearch(&source, options);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->found());
  const std::string label = space.RegionLabel(result->bellwether);
  EXPECT_TRUE(label == "[3-4, WI]" || label == "[3-3, WI]" ||
              label == "[4-4, WI]")
      << "found " << label;
}

}  // namespace
}  // namespace bellwether::core
