#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "core/baselines.h"
#include "core/basic_search.h"
#include "core/training_data_gen.h"
#include "datagen/mail_order.h"
#include "storage/training_data.h"

namespace bellwether::core {
namespace {

// Shared small mail-order dataset + generated training data (generation is
// the slow part; share it across tests).
class BasicSearchTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::MailOrderConfig config;
    config.num_items = 150;
    config.density = 1.2;
    config.seed = 99;
    dataset_ = new datagen::MailOrderDataset(
        datagen::GenerateMailOrder(config));
    spec_ = new BellwetherSpec(dataset_->MakeSpec(/*budget=*/60.0,
                                                  /*min_coverage=*/0.5));
    auto data = GenerateTrainingDataInMemory(*spec_);
    ASSERT_TRUE(data.ok()) << data.status().ToString();
    data_ = new GeneratedTrainingData(std::move(data).value());
  }
  static void TearDownTestSuite() {
    delete data_;
    delete spec_;
    delete dataset_;
    data_ = nullptr;
    spec_ = nullptr;
    dataset_ = nullptr;
  }

  static datagen::MailOrderDataset* dataset_;
  static BellwetherSpec* spec_;
  static GeneratedTrainingData* data_;
};

datagen::MailOrderDataset* BasicSearchTest::dataset_ = nullptr;
BellwetherSpec* BasicSearchTest::spec_ = nullptr;
GeneratedTrainingData* BasicSearchTest::data_ = nullptr;

TEST_F(BasicSearchTest, FindsAMinimumErrorRegion) {
  storage::TrainingDataSource& source = *data_->source;
  BasicSearchOptions options;
  options.estimate = regression::ErrorEstimate::kTrainingSet;
  auto result = RunBasicBellwetherSearch(&source, options);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->found());
  // The winner really is the minimum over usable scores.
  for (const auto& s : result->scores) {
    if (s.usable) {
      EXPECT_GE(s.error.rmse, result->error.rmse - 1e-12);
    }
  }
  EXPECT_EQ(result->scores.size(), data_->source->num_region_sets());
}

TEST_F(BasicSearchTest, BellwetherIsInThePlantedState) {
  // The planted state's data tracks total profit with far less noise than
  // any other state, so the chosen region's location coordinate must be the
  // planted state (windows may differ).
  storage::TrainingDataSource& source = *data_->source;
  BasicSearchOptions options;
  options.estimate = regression::ErrorEstimate::kCrossValidation;
  options.cv_folds = 10;
  options.min_examples = 40;
  auto result = RunBasicBellwetherSearch(&source, options);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->found());
  const olap::RegionCoords coords = spec_->space->Decode(result->bellwether);
  EXPECT_EQ(coords[1], dataset_->planted_state_node)
      << "found " << spec_->space->RegionLabel(result->bellwether);
}

TEST_F(BasicSearchTest, BellwetherBeatsTheAverageRegion) {
  storage::TrainingDataSource& source = *data_->source;
  BasicSearchOptions options;
  options.estimate = regression::ErrorEstimate::kCrossValidation;
  auto result = RunBasicBellwetherSearch(&source, options);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->found());
  EXPECT_LT(result->error.rmse, 0.5 * result->AverageError());
}

TEST_F(BasicSearchTest, PlantedBellwetherIsNearlyUnique) {
  storage::TrainingDataSource& source = *data_->source;
  BasicSearchOptions options;
  options.estimate = regression::ErrorEstimate::kCrossValidation;
  auto result = RunBasicBellwetherSearch(&source, options);
  ASSERT_TRUE(result.ok());
  // Only regions inside the planted state can match the bellwether model,
  // i.e. a small fraction of all feasible regions (Fig. 7(b)'s "low
  // fraction of indistinguishables" regime).
  EXPECT_LT(result->FractionIndistinguishable(0.95), 0.3);
}

TEST_F(BasicSearchTest, SelectUnderBudgetRestrictsAndRefits) {
  storage::TrainingDataSource& source = *data_->source;
  BasicSearchOptions options;
  options.estimate = regression::ErrorEstimate::kTrainingSet;
  auto full = RunBasicBellwetherSearch(&source, options);
  ASSERT_TRUE(full.ok());
  const double tight_budget = 10.0;
  auto tight =
      SelectUnderBudget(*full, &source, data_->profile.region_costs, tight_budget);
  ASSERT_TRUE(tight.ok());
  for (const auto& s : tight->scores) {
    EXPECT_LE(data_->profile.region_costs[s.region], tight_budget);
  }
  if (tight->found()) {
    EXPECT_GE(tight->error.rmse, full->error.rmse - 1e-12);
  }
}

TEST_F(BasicSearchTest, ErrorDecreasesWithBudget) {
  storage::TrainingDataSource& source = *data_->source;
  BasicSearchOptions options;
  options.estimate = regression::ErrorEstimate::kTrainingSet;
  auto full = RunBasicBellwetherSearch(&source, options);
  ASSERT_TRUE(full.ok());
  double prev = std::numeric_limits<double>::infinity();
  for (double budget : {10.0, 25.0, 45.0, 60.0}) {
    auto r = SelectUnderBudget(*full, &source, data_->profile.region_costs, budget);
    ASSERT_TRUE(r.ok());
    if (!r->found()) continue;
    EXPECT_LE(r->error.rmse, prev + 1e-12);
    prev = r->error.rmse;
  }
}

TEST_F(BasicSearchTest, ItemMaskRestrictsTrainingRows) {
  storage::TrainingDataSource& source = *data_->source;
  std::vector<uint8_t> mask(data_->profile.targets.size(), 0);
  for (size_t i = 0; i < mask.size(); i += 2) mask[i] = 1;
  BasicSearchOptions options;
  options.estimate = regression::ErrorEstimate::kTrainingSet;
  auto masked = RunBasicBellwetherSearch(&source, options, &mask);
  ASSERT_TRUE(masked.ok());
  auto unmasked = RunBasicBellwetherSearch(&source, options);
  ASSERT_TRUE(unmasked.ok());
  for (size_t i = 0; i < masked->scores.size(); ++i) {
    EXPECT_LE(masked->scores[i].num_examples,
              unmasked->scores[i].num_examples);
  }
}

TEST_F(BasicSearchTest, TrainingErrorTracksCvError) {
  // Fig. 7(c): for linear models, the training-set error curve is almost
  // identical to the cross-validation curve. Check region-level agreement.
  storage::TrainingDataSource& source = *data_->source;
  BasicSearchOptions cv_opts;
  cv_opts.estimate = regression::ErrorEstimate::kCrossValidation;
  BasicSearchOptions tr_opts;
  tr_opts.estimate = regression::ErrorEstimate::kTrainingSet;
  auto cv = RunBasicBellwetherSearch(&source, cv_opts);
  auto tr = RunBasicBellwetherSearch(&source, tr_opts);
  ASSERT_TRUE(cv.ok());
  ASSERT_TRUE(tr.ok());
  ASSERT_TRUE(cv->found());
  ASSERT_TRUE(tr->found());
  int64_t compared = 0;
  for (size_t i = 0; i < cv->scores.size(); ++i) {
    if (!cv->scores[i].usable || !tr->scores[i].usable) continue;
    // The agreement claim is asymptotic; compare well-populated regions.
    if (cv->scores[i].num_examples < 100) continue;
    EXPECT_NEAR(tr->scores[i].error.rmse, cv->scores[i].error.rmse,
                0.35 * cv->scores[i].error.rmse + 1e-9);
    ++compared;
  }
  EXPECT_GT(compared, 10);
}

TEST_F(BasicSearchTest, RandomSamplingBaselineIsWorseThanBellwether) {
  storage::TrainingDataSource& source = *data_->source;
  BasicSearchOptions options;
  options.estimate = regression::ErrorEstimate::kCrossValidation;
  auto result = RunBasicBellwetherSearch(&source, options);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->found());
  Rng rng(5);
  auto smp = RandomSamplingError(*spec_, /*budget=*/30.0, /*trials=*/3, &rng);
  ASSERT_TRUE(smp.ok()) << smp.status().ToString();
  EXPECT_GT(smp->rmse, result->error.rmse);
}

TEST(BasicSearchEdgeTest, EmptySourceFindsNothing) {
  storage::MemoryTrainingData source({});
  BasicSearchOptions options;
  auto result = RunBasicBellwetherSearch(&source, options);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->found());
}

TEST(BasicSearchEdgeTest, TooFewExamplesIsUnusable) {
  storage::RegionTrainingSet tiny;
  tiny.region = 0;
  tiny.num_features = 2;
  tiny.items = {0, 1};
  tiny.targets = {1.0, 2.0};
  tiny.features = {1.0, 0.5, 1.0, 0.7};
  storage::MemoryTrainingData source({tiny});
  BasicSearchOptions options;
  options.min_examples = 5;
  auto result = RunBasicBellwetherSearch(&source, options);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->found());
  EXPECT_FALSE(result->scores[0].usable);
}

}  // namespace
}  // namespace bellwether::core
