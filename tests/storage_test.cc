#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>

#include "storage/training_data.h"

namespace bellwether::storage {
namespace {

RegionTrainingSet MakeSet(int64_t region, int32_t n, int32_t p) {
  RegionTrainingSet set;
  set.region = region;
  set.num_features = p;
  for (int32_t i = 0; i < n; ++i) {
    set.items.push_back(i);
    set.targets.push_back(region * 100.0 + i);
    for (int32_t k = 0; k < p; ++k) {
      set.features.push_back(region + 0.25 * i + 0.01 * k);
    }
  }
  return set;
}

void ExpectSetsEqual(const RegionTrainingSet& a, const RegionTrainingSet& b) {
  EXPECT_EQ(a.region, b.region);
  EXPECT_EQ(a.num_features, b.num_features);
  EXPECT_EQ(a.items, b.items);
  EXPECT_EQ(a.targets, b.targets);
  EXPECT_EQ(a.features, b.features);
}

TEST(MemoryTrainingDataTest, ScanVisitsInOrderAndCountsIo) {
  std::vector<RegionTrainingSet> sets{MakeSet(3, 4, 2), MakeSet(7, 2, 2)};
  MemoryTrainingData src(sets);
  std::vector<int64_t> seen;
  ASSERT_TRUE(src.Scan([&](const RegionTrainingSet& s) {
                    seen.push_back(s.region);
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(seen, (std::vector<int64_t>{3, 7}));
  EXPECT_EQ(src.io_stats().sequential_scans, 1);
  EXPECT_EQ(src.io_stats().region_reads, 2);
  EXPECT_GT(src.io_stats().bytes_read, 0);
}

TEST(MemoryTrainingDataTest, RandomReadAndBounds) {
  MemoryTrainingData src({MakeSet(1, 3, 2)});
  auto s = src.Read(0);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->region, 1);
  EXPECT_FALSE(src.Read(5).ok());
  EXPECT_EQ(src.RegionIds(), (std::vector<olap::RegionId>{1}));
}

TEST(SpillFileTest, WriteReadRoundTrip) {
  const std::string path = ::testing::TempDir() + "/spill_roundtrip.bin";
  std::vector<RegionTrainingSet> sets{MakeSet(0, 5, 3), MakeSet(2, 1, 3),
                                      MakeSet(9, 0, 3)};
  {
    auto writer = SpillFileWriter::Create(path);
    ASSERT_TRUE(writer.ok());
    for (const auto& s : sets) ASSERT_TRUE((*writer)->Append(s).ok());
    ASSERT_TRUE((*writer)->Finish().ok());
  }
  auto src = SpilledTrainingData::Open(path);
  ASSERT_TRUE(src.ok());
  EXPECT_EQ((*src)->num_region_sets(), 3u);
  EXPECT_EQ((*src)->RegionIds(), (std::vector<olap::RegionId>{0, 2, 9}));

  // Random reads.
  for (size_t i = 0; i < sets.size(); ++i) {
    auto s = (*src)->Read(i);
    ASSERT_TRUE(s.ok());
    ExpectSetsEqual(*s, sets[i]);
  }
  // Sequential scan.
  size_t idx = 0;
  ASSERT_TRUE((*src)
                  ->Scan([&](const RegionTrainingSet& s) {
                    ExpectSetsEqual(s, sets[idx++]);
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(idx, 3u);
  EXPECT_EQ((*src)->io_stats().sequential_scans, 1);
  // 3 random reads + 3 scan reads.
  EXPECT_EQ((*src)->io_stats().region_reads, 6);
  std::remove(path.c_str());
}

TEST(SpillFileTest, EveryReadHitsTheFile) {
  // The paper's Fig. 11(a) setting: "each time they need the training data
  // from a region, they always read the data from disk" — repeated Read()
  // calls must not be cached.
  const std::string path = ::testing::TempDir() + "/spill_reread.bin";
  {
    auto writer = SpillFileWriter::Create(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append(MakeSet(1, 10, 2)).ok());
    ASSERT_TRUE((*writer)->Finish().ok());
  }
  auto src = SpilledTrainingData::Open(path);
  ASSERT_TRUE(src.ok());
  const int64_t first_bytes = [&] {
    auto s = (*src)->Read(0);
    EXPECT_TRUE(s.ok());
    return (*src)->io_stats().bytes_read;
  }();
  auto again = (*src)->Read(0);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ((*src)->io_stats().bytes_read, 2 * first_bytes);
  EXPECT_EQ((*src)->io_stats().region_reads, 2);
  std::remove(path.c_str());
}

TEST(SpillFileTest, OpenRejectsCorruptFile) {
  const std::string path = ::testing::TempDir() + "/spill_bad.bin";
  FILE* f = fopen(path.c_str(), "wb");
  fputs("not a spill file at all", f);
  fclose(f);
  EXPECT_FALSE(SpilledTrainingData::Open(path).ok());
  std::remove(path.c_str());
}

TEST(SpillFileTest, OpenRejectsMissingFile) {
  EXPECT_FALSE(SpilledTrainingData::Open("/nonexistent/x.bin").ok());
}

TEST(SpillFileTest, SimulatedLatencySlowsReads) {
  const std::string path = ::testing::TempDir() + "/spill_latency.bin";
  {
    auto writer = SpillFileWriter::Create(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append(MakeSet(1, 1, 1)).ok());
    ASSERT_TRUE((*writer)->Finish().ok());
  }
  auto src = SpilledTrainingData::Open(path);
  ASSERT_TRUE(src.ok());
  (*src)->set_simulated_read_latency_micros(2000);
  const auto start = std::chrono::steady_clock::now();
  ASSERT_TRUE((*src)->Read(0).ok());
  const auto elapsed = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  EXPECT_GE(elapsed, 1.5);
  std::remove(path.c_str());
}

TEST(RegionTrainingSetTest, ByteSizeTracksContent) {
  const RegionTrainingSet small = MakeSet(0, 1, 1);
  const RegionTrainingSet big = MakeSet(0, 100, 4);
  EXPECT_GT(big.ByteSize(), small.ByteSize());
}

}  // namespace
}  // namespace bellwether::storage
