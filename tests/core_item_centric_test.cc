#include <gtest/gtest.h>

#include "core/item_centric_eval.h"
#include "datagen/simulation.h"

namespace bellwether::core {
namespace {

datagen::SimulationDataset MakeSim(int32_t tree_nodes, double noise,
                                   uint64_t seed) {
  datagen::SimulationConfig config;
  config.num_items = 300;
  config.generator_tree_nodes = tree_nodes;
  config.noise = noise;
  config.num_windows = 3;
  config.location_fanouts = {2, 2};
  config.seed = seed;
  return datagen::GenerateSimulation(config);
}

ItemCentricOptions MakeOptions(const datagen::SimulationDataset& sim) {
  ItemCentricOptions opts;
  opts.folds = 5;
  opts.tree.split_columns = sim.feature_columns;
  opts.tree.min_items = 40;
  opts.tree.max_depth = 4;
  opts.tree.min_examples_per_model = 8;
  opts.cube.min_subset_size = 20;
  opts.cube.min_examples_per_model = 8;
  opts.cube.compute_cv_stats = true;
  opts.cube.cv_folds = 5;
  opts.basic.estimate = regression::ErrorEstimate::kTrainingSet;
  return opts;
}

ItemCentricInput MakeInput(const datagen::SimulationDataset& sim,
                           std::shared_ptr<const ItemSubsetSpace> subsets) {
  ItemCentricInput input;
  input.sets = &sim.sets;
  input.targets = &sim.targets;
  input.item_table = &sim.items;
  input.subsets = std::move(subsets);
  return input;
}

TEST(ItemCentricEvalTest, RunsAndPredictsMostItems) {
  datagen::SimulationDataset sim = MakeSim(7, 0.3, 51);
  auto subsets = ItemSubsetSpace::Create(sim.items, sim.item_hierarchies);
  ASSERT_TRUE(subsets.ok());
  auto result =
      EvaluateItemCentric(MakeInput(sim, *subsets), MakeOptions(sim));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const int64_t total = 300;
  EXPECT_GT(result->basic.predicted, total * 8 / 10);
  EXPECT_GT(result->tree.predicted, total * 8 / 10);
  EXPECT_GT(result->cube.predicted, total * 8 / 10);
  EXPECT_GT(result->basic.rmse, 0.0);
}

TEST(ItemCentricEvalTest, TreeAndCubeBeatBasicOnComplexLowNoiseData) {
  // Fig. 10's main claim: with a complex bellwether distribution and low
  // noise, the item-centric methods out-predict the single global region.
  datagen::SimulationDataset sim = MakeSim(15, 0.1, 53);
  auto subsets = ItemSubsetSpace::Create(sim.items, sim.item_hierarchies);
  ASSERT_TRUE(subsets.ok());
  auto result =
      EvaluateItemCentric(MakeInput(sim, *subsets), MakeOptions(sim));
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->tree.rmse, result->basic.rmse);
  EXPECT_LT(result->cube.rmse, result->basic.rmse);
}

TEST(ItemCentricEvalTest, TreeAdvantageShrinksAsNoiseGrows) {
  // Fig. 10(a): as noise grows, the *relative* advantage of the
  // item-centric methods over the basic search shrinks (all methods
  // approach the noise floor).
  auto relative_gap = [](uint64_t seed, double noise) {
    datagen::SimulationDataset sim = MakeSim(15, noise, seed);
    auto subsets = ItemSubsetSpace::Create(sim.items, sim.item_hierarchies);
    EXPECT_TRUE(subsets.ok());
    auto result =
        EvaluateItemCentric(MakeInput(sim, *subsets), MakeOptions(sim));
    EXPECT_TRUE(result.ok());
    return (result->basic.rmse - result->tree.rmse) / result->basic.rmse;
  };
  const double gap_quiet = relative_gap(55, 0.1);
  const double gap_loud = relative_gap(55, 20.0);
  EXPECT_GT(gap_quiet, gap_loud);
}

TEST(ItemCentricEvalTest, CanSkipTreeAndCube) {
  datagen::SimulationDataset sim = MakeSim(7, 0.3, 57);
  ItemCentricOptions opts = MakeOptions(sim);
  opts.run_tree = false;
  opts.run_cube = false;
  auto result = EvaluateItemCentric(MakeInput(sim, nullptr), opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->tree.predicted, 0);
  EXPECT_EQ(result->cube.predicted, 0);
  EXPECT_GT(result->basic.predicted, 0);
}

TEST(ItemCentricEvalTest, ValidatesInputs) {
  datagen::SimulationDataset sim = MakeSim(7, 0.3, 59);
  ItemCentricOptions opts = MakeOptions(sim);
  ItemCentricInput input = MakeInput(sim, nullptr);
  // Cube requested without hierarchies.
  EXPECT_FALSE(EvaluateItemCentric(input, opts).ok());
  opts.run_cube = false;
  opts.folds = 1;
  EXPECT_FALSE(EvaluateItemCentric(input, opts).ok());
}

TEST(FilterSetsByBudgetTest, KeepsOnlyAffordableRegions) {
  datagen::SimulationDataset sim = MakeSim(7, 0.3, 61);
  std::vector<double> costs(sim.space->NumRegions(), 0.0);
  for (size_t r = 0; r < costs.size(); ++r) costs[r] = static_cast<double>(r);
  const auto filtered = FilterSetsByBudget(sim.sets, costs, 5.0);
  EXPECT_EQ(filtered.size(), 6u);  // regions 0..5
  for (const auto& s : filtered) EXPECT_LE(costs[s.region], 5.0);
}

}  // namespace
}  // namespace bellwether::core
