// Randomized equivalence properties: for randomly shaped region spaces and
// randomly generated star schemas, the single-pass CUBE training-data
// generator must agree with the original per-region relational queries
// (§4.2), for both window kinds, with and without WLS support weights.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/random.h"
#include "core/training_data_gen.h"
#include "datagen/hierarchy_util.h"
#include "olap/cost.h"
#include "table/table.h"

namespace bellwether::core {
namespace {

using olap::HierarchicalDimension;
using olap::IntervalDimension;
using olap::NodeId;
using table::AggFn;
using table::DataType;
using table::Schema;
using table::Table;
using table::Value;

// A randomly generated star schema with random dimensions.
struct RandomDb {
  Table fact{Schema({{"T", DataType::kInt64},
                     {"L", DataType::kInt64},
                     {"Item", DataType::kInt64},
                     {"Ref", DataType::kInt64},
                     {"M", DataType::kDouble}})};
  Table items{Schema({{"Item", DataType::kInt64},
                      {"F", DataType::kDouble}})};
  Table refs{Schema({{"Ref", DataType::kInt64}, {"V", DataType::kDouble}})};
  std::unique_ptr<olap::RegionSpace> space;
  std::unique_ptr<olap::CostModel> cost;

  BellwetherSpec MakeSpec(double budget, double coverage,
                          bool weighted) const {
    BellwetherSpec spec;
    spec.space = space.get();
    spec.fact = &fact;
    spec.item_id_column = "Item";
    spec.dimension_columns = {"T", "L"};
    spec.references["refs"] = ReferenceTable{&refs, "Ref"};
    spec.item_table = &items;
    spec.item_table_id_column = "Item";
    spec.item_feature_columns = {"F"};
    spec.regional_features = {
        {FeatureQuery::Kind::kFactMeasure, AggFn::kSum, "Sum", "M", "", ""},
        {FeatureQuery::Kind::kFactMeasure, AggFn::kMin, "Min", "M", "", ""},
        {FeatureQuery::Kind::kFactMeasure, AggFn::kAvg, "Avg", "M", "", ""},
        {FeatureQuery::Kind::kReferenceMeasure, AggFn::kMax, "RefMax", "V",
         "refs", "Ref"},
        {FeatureQuery::Kind::kFkDistinctMeasure, AggFn::kSum, "RefDistinct",
         "V", "refs", "Ref"},
    };
    spec.target_fn = AggFn::kSum;
    spec.target_column = "M";
    spec.weight_by_support = weighted;
    spec.cost = cost.get();
    spec.budget = budget;
    spec.min_coverage = coverage;
    return spec;
  }
};

RandomDb MakeRandomDb(Rng* rng, olap::WindowKind kind) {
  RandomDb db;
  // Random hierarchy: 1-2 levels, fanouts 2-3.
  std::vector<int32_t> fanouts{
      static_cast<int32_t>(2 + rng->NextUint64(2))};
  if (rng->NextBool()) {
    fanouts.push_back(static_cast<int32_t>(2 + rng->NextUint64(2)));
  }
  HierarchicalDimension loc =
      datagen::BuildBalancedHierarchy("L", "All", fanouts, "N");
  const int32_t max_time = static_cast<int32_t>(2 + rng->NextUint64(3));
  std::vector<olap::Dimension> dims;
  dims.emplace_back(IntervalDimension("T", max_time, kind));
  dims.emplace_back(loc);
  db.space = std::make_unique<olap::RegionSpace>(std::move(dims));

  std::vector<double> cell_costs(db.space->NumFinestCells());
  for (auto& c : cell_costs) c = rng->NextDouble(0.1, 2.0);
  db.cost = std::make_unique<olap::CostModel>(
      std::move(olap::CostModel::Create(db.space.get(), cell_costs)).value());

  const int32_t num_items = static_cast<int32_t>(4 + rng->NextUint64(8));
  for (int32_t i = 1; i <= num_items; ++i) {
    db.items.AppendRow({Value(static_cast<int64_t>(i)),
                        Value(rng->NextDouble(-5, 5))});
  }
  const int32_t num_refs = static_cast<int32_t>(3 + rng->NextUint64(4));
  for (int32_t r = 1; r <= num_refs; ++r) {
    db.refs.AppendRow({Value(static_cast<int64_t>(r)),
                       Value(rng->NextDouble(0, 10))});
  }
  const auto& leaves = loc.leaves();
  const int32_t rows = static_cast<int32_t>(30 + rng->NextUint64(120));
  for (int32_t k = 0; k < rows; ++k) {
    const int64_t item = 1 + static_cast<int64_t>(rng->NextUint64(num_items));
    // ~10% null FKs and a few unknown FKs exercise the null/missing paths.
    Value fk = Value::Null();
    if (!rng->NextBool(0.1)) {
      fk = Value(static_cast<int64_t>(1 + rng->NextUint64(num_refs + 1)));
    }
    db.fact.AppendRow({Value(static_cast<int64_t>(1 + rng->NextUint64(max_time))),
                       Value(static_cast<int64_t>(
                           leaves[rng->NextUint64(leaves.size())])),
                       Value(item), fk, Value(rng->NextDouble(-20, 20))});
  }
  return db;
}

void ExpectEquivalent(const RandomDb& db, const BellwetherSpec& spec) {
  auto data = GenerateTrainingDataInMemory(spec);
  ASSERT_TRUE(data.ok()) << data.status().ToString();
  for (const auto& set : *data->memory_sets()) {
    auto naive = GenerateRegionTrainingSetNaive(spec, set.region);
    ASSERT_TRUE(naive.ok()) << naive.status().ToString();
    ASSERT_EQ(naive->items, set.items)
        << "region " << db.space->RegionLabel(set.region);
    ASSERT_EQ(naive->weights.size(), set.weights.size());
    for (size_t i = 0; i < set.features.size(); ++i) {
      ASSERT_NEAR(naive->features[i], set.features[i],
                  1e-9 * (1.0 + std::fabs(set.features[i])))
          << "flat feature " << i << " in "
          << db.space->RegionLabel(set.region);
    }
    for (size_t i = 0; i < set.weights.size(); ++i) {
      ASSERT_DOUBLE_EQ(naive->weights[i], set.weights[i]);
    }
    for (size_t i = 0; i < set.targets.size(); ++i) {
      ASSERT_NEAR(naive->targets[i], set.targets[i], 1e-9);
    }
  }
}

class FuzzEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzEquivalenceTest, CubePathMatchesNaiveOnRandomSchemas) {
  Rng rng(10000 + GetParam());
  const auto kind = GetParam() % 2 == 0 ? olap::WindowKind::kIncremental
                                        : olap::WindowKind::kSliding;
  RandomDb db = MakeRandomDb(&rng, kind);
  const double budget = rng.NextDouble(1.0, 20.0);
  const double coverage = rng.NextDouble(0.0, 0.5);
  const bool weighted = GetParam() % 3 == 0;
  ExpectEquivalent(db, db.MakeSpec(budget, coverage, weighted));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzEquivalenceTest, ::testing::Range(1, 17));

}  // namespace
}  // namespace bellwether::core
