#include <gtest/gtest.h>

#include <cmath>

#include "core/bellwether_cube.h"
#include "core/eval_util.h"
#include "datagen/simulation.h"
#include "storage/training_data.h"

namespace bellwether::core {
namespace {

datagen::SimulationDataset MakeSim(uint64_t seed, int32_t items = 240,
                                   double noise = 0.3) {
  datagen::SimulationConfig config;
  config.num_items = items;
  config.generator_tree_nodes = 7;
  config.noise = noise;
  config.num_windows = 3;
  config.location_fanouts = {2, 2};
  config.seed = seed;
  return datagen::GenerateSimulation(config);
}

std::shared_ptr<const ItemSubsetSpace> MakeSubsets(
    const datagen::SimulationDataset& sim) {
  auto subsets = ItemSubsetSpace::Create(sim.items, sim.item_hierarchies);
  EXPECT_TRUE(subsets.ok());
  return *subsets;
}

CubeBuildConfig MakeConfig(bool cv = false) {
  CubeBuildConfig config;
  config.min_subset_size = 20;
  config.min_examples_per_model = 8;
  config.compute_cv_stats = cv;
  return config;
}

TEST(ItemSubsetSpaceTest, LatticeShape) {
  datagen::SimulationDataset sim = MakeSim(1);
  auto subsets = MakeSubsets(sim);
  // Three 1-level binary hierarchies: (1 root + 2 leaves)^3 = 27 subsets.
  EXPECT_EQ(subsets->NumSubsets(), 27);
  EXPECT_EQ(subsets->num_items(), 240);
  // Every item is contained in exactly 2^3 = 8 subsets.
  int32_t count = 0;
  subsets->ForEachContainingSubset(0, [&](SubsetId) { ++count; });
  EXPECT_EQ(count, 8);
}

TEST(ItemSubsetSpaceTest, ContainmentMatchesCoordinates) {
  datagen::SimulationDataset sim = MakeSim(2);
  auto subsets = MakeSubsets(sim);
  for (int32_t i = 0; i < 20; ++i) {
    subsets->ForEachContainingSubset(i, [&](SubsetId s) {
      EXPECT_TRUE(subsets->SubsetContainsItem(s, i));
    });
    // The root subset [Any, Any, Any] contains everything.
    EXPECT_TRUE(subsets->SubsetContainsItem(
        subsets->space().Encode({0, 0, 0}), i));
  }
}

TEST(ItemSubsetSpaceTest, SubsetDepthsAndLabels) {
  datagen::SimulationDataset sim = MakeSim(3);
  auto subsets = MakeSubsets(sim);
  const SubsetId root = subsets->space().Encode({0, 0, 0});
  EXPECT_EQ(subsets->SubsetDepths(root), (std::vector<int32_t>{0, 0, 0}));
  EXPECT_EQ(subsets->SubsetLabel(root), "[Any, Any, Any]");
}

TEST(ItemSubsetSpaceTest, RejectsBadColumns) {
  datagen::SimulationDataset sim = MakeSim(4);
  auto bad = ItemSubsetSpace::Create(
      sim.items, {core::ItemHierarchy{"Missing", sim.item_hierarchies[0].dim}});
  EXPECT_FALSE(bad.ok());
  // A numeric column cannot serve as hierarchy labels.
  auto numeric = ItemSubsetSpace::Create(
      sim.items, {core::ItemHierarchy{"F1", sim.item_hierarchies[0].dim}});
  EXPECT_FALSE(numeric.ok());
}

void ExpectCubesEqual(const BellwetherCube& a, const BellwetherCube& b,
                      double tol) {
  ASSERT_EQ(a.cells().size(), b.cells().size());
  for (size_t i = 0; i < a.cells().size(); ++i) {
    const CubeCell& ca = a.cells()[i];
    const CubeCell& cb = b.cells()[i];
    EXPECT_EQ(ca.subset, cb.subset);
    EXPECT_EQ(ca.subset_size, cb.subset_size);
    EXPECT_EQ(ca.has_model, cb.has_model) << "cell " << i;
    if (ca.has_model && cb.has_model) {
      EXPECT_EQ(ca.region, cb.region) << "cell " << i;
      EXPECT_NEAR(ca.error, cb.error, tol * (1.0 + std::fabs(ca.error)))
          << "cell " << i;
    }
  }
}

// Lemma 2 (+ Theorem 1): the naive, single-scan, and optimized builders
// output the same bellwether cube.
class Lemma2Test : public ::testing::TestWithParam<int> {};

TEST_P(Lemma2Test, AllThreeBuildersAgree) {
  datagen::SimulationDataset sim = MakeSim(GetParam());
  auto subsets = MakeSubsets(sim);
  const CubeBuildConfig config = MakeConfig();
  storage::MemoryTrainingData s1(sim.sets), s2(sim.sets), s3(sim.sets);
  auto naive = BuildBellwetherCubeNaive(&s1, subsets, config);
  auto scan = BuildBellwetherCubeSingleScan(&s2, subsets, config);
  auto opt = BuildBellwetherCubeOptimized(&s3, subsets, config);
  ASSERT_TRUE(naive.ok()) << naive.status().ToString();
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  ASSERT_TRUE(opt.ok()) << opt.status().ToString();
  // Naive vs single-scan accumulate in identical order: exact equality.
  ExpectCubesEqual(*naive, *scan, 1e-12);
  // The optimized builder merges statistics in lattice order; identical up
  // to floating-point reassociation.
  ExpectCubesEqual(*scan, *opt, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma2Test, ::testing::Range(1, 6));

TEST(CubeScanCountTest, SingleScanAndOptimizedScanOnce) {
  datagen::SimulationDataset sim = MakeSim(7);
  auto subsets = MakeSubsets(sim);
  const CubeBuildConfig config = MakeConfig();
  storage::MemoryTrainingData scan_src(sim.sets);
  ASSERT_TRUE(BuildBellwetherCubeSingleScan(&scan_src, subsets, config).ok());
  EXPECT_EQ(scan_src.io_stats().sequential_scans, 1);
  EXPECT_EQ(scan_src.io_stats().region_reads,
            static_cast<int64_t>(sim.sets.size()));

  storage::MemoryTrainingData opt_src(sim.sets);
  ASSERT_TRUE(BuildBellwetherCubeOptimized(&opt_src, subsets, config).ok());
  EXPECT_EQ(opt_src.io_stats().sequential_scans, 1);

  storage::MemoryTrainingData naive_src(sim.sets);
  auto naive = BuildBellwetherCubeNaive(&naive_src, subsets, config);
  ASSERT_TRUE(naive.ok());
  // The naive builder reads the whole training data once per significant
  // subset.
  EXPECT_EQ(naive_src.io_stats().region_reads,
            static_cast<int64_t>(naive->cells().size() * sim.sets.size()));
}

TEST(CubeTest, SignificanceThresholdFiltersSubsets) {
  datagen::SimulationDataset sim = MakeSim(8);
  auto subsets = MakeSubsets(sim);
  CubeBuildConfig small = MakeConfig();
  small.min_subset_size = 1;
  CubeBuildConfig large = MakeConfig();
  large.min_subset_size = sim.items.num_rows() / 2;
  storage::MemoryTrainingData s1(sim.sets), s2(sim.sets);
  auto all = BuildBellwetherCubeOptimized(&s1, subsets, small);
  auto sig = BuildBellwetherCubeOptimized(&s2, subsets, large);
  ASSERT_TRUE(all.ok());
  ASSERT_TRUE(sig.ok());
  EXPECT_EQ(all->cells().size(), 27u);
  EXPECT_LT(sig->cells().size(), all->cells().size());
  for (const auto& cell : sig->cells()) {
    EXPECT_GE(cell.subset_size,
              static_cast<int32_t>(sim.items.num_rows() / 2));
  }
}

TEST(CubeTest, CellErrorsMatchDirectRecomputation) {
  datagen::SimulationDataset sim = MakeSim(9, 150);
  auto subsets = MakeSubsets(sim);
  storage::MemoryTrainingData source(sim.sets);
  auto cube = BuildBellwetherCubeOptimized(&source, subsets, MakeConfig());
  ASSERT_TRUE(cube.ok());
  // For each cell, refit on the winning region restricted to the subset and
  // verify the recorded training error and its minimality over regions.
  for (const auto& cell : cube->cells()) {
    if (!cell.has_model) continue;
    for (const auto& set : sim.sets) {
      regression::RegressionSuffStats stats(set.num_features);
      for (size_t r = 0; r < set.num_examples(); ++r) {
        if (subsets->SubsetContainsItem(cell.subset, set.items[r])) {
          stats.Add(set.row(r), set.targets[r]);
        }
      }
      const double err = TrainingErrorOfStats(stats, 8);
      if (set.region == cell.region) {
        EXPECT_NEAR(err, cell.error, 1e-6 * (1.0 + err));
      } else {
        EXPECT_GE(err, cell.error - 1e-6 * (1.0 + cell.error));
      }
    }
  }
}

TEST(CubeTest, PredictItemUsesContainingSubsets) {
  datagen::SimulationDataset sim = MakeSim(10);
  auto subsets = MakeSubsets(sim);
  storage::MemoryTrainingData source(sim.sets);
  auto cube = BuildBellwetherCubeOptimized(&source, subsets, MakeConfig(true));
  ASSERT_TRUE(cube.ok());
  const RegionFeatureLookup lookup(&sim.sets);
  int32_t predicted = 0;
  for (int32_t i = 0; i < 40; ++i) {
    auto p = cube->PredictItem(i, lookup);
    if (!p.ok()) continue;
    ++predicted;
    EXPECT_TRUE(subsets->SubsetContainsItem(p->subset, i));
    const CubeCell* cell = cube->FindCell(p->subset);
    ASSERT_NE(cell, nullptr);
    EXPECT_EQ(cell->region, p->region);
  }
  EXPECT_GT(predicted, 30);
}

TEST(CubeTest, CvStatsPopulatedWhenRequested) {
  datagen::SimulationDataset sim = MakeSim(11);
  auto subsets = MakeSubsets(sim);
  storage::MemoryTrainingData source(sim.sets);
  auto cube = BuildBellwetherCubeOptimized(&source, subsets, MakeConfig(true));
  ASSERT_TRUE(cube.ok());
  int32_t with_cv = 0;
  for (const auto& cell : cube->cells()) {
    if (cell.has_cv) {
      ++with_cv;
      EXPECT_GT(cell.cv.num_folds, 1);
      EXPECT_GE(cell.cv.UpperConfidenceBound(0.95), cell.cv.rmse);
    }
  }
  EXPECT_GT(with_cv, 0);
}

TEST(CubeTest, CrossTabRollupAndDrilldown) {
  datagen::SimulationDataset sim = MakeSim(12);
  auto subsets = MakeSubsets(sim);
  storage::MemoryTrainingData source(sim.sets);
  CubeBuildConfig config = MakeConfig();
  config.min_subset_size = 1;
  auto cube = BuildBellwetherCubeOptimized(&source, subsets, config);
  ASSERT_TRUE(cube.ok());
  // Top level: the single [Any, Any, Any] cell.
  auto top = cube->CrossTab({0, 0, 0}, sim.space.get());
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].subset_label, "[Any, Any, Any]");
  // Drill down on the first hierarchy: 2 cells.
  auto drill = cube->CrossTab({1, 0, 0}, sim.space.get());
  EXPECT_EQ(drill.size(), 2u);
  // Base level: 8 cells.
  auto base = cube->CrossTab({1, 1, 1}, sim.space.get());
  EXPECT_EQ(base.size(), 8u);
}

TEST(CubeTest, ItemMaskRestrictsSizesAndModels) {
  datagen::SimulationDataset sim = MakeSim(13);
  auto subsets = MakeSubsets(sim);
  std::vector<uint8_t> mask(sim.targets.size(), 0);
  for (size_t i = 0; i < mask.size() / 3; ++i) mask[i] = 1;
  storage::MemoryTrainingData source(sim.sets);
  auto cube =
      BuildBellwetherCubeOptimized(&source, subsets, MakeConfig(), &mask);
  ASSERT_TRUE(cube.ok());
  const CubeCell* root = cube->FindCell(subsets->space().Encode({0, 0, 0}));
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->subset_size, static_cast<int32_t>(mask.size() / 3));
}

}  // namespace
}  // namespace bellwether::core
