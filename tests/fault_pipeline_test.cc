// End-to-end resilience of the bellwether pipeline under deterministic fault
// injection (the acceptance scenarios of the robustness work):
//   (a) transient storage failures are retried and the search result is
//       bit-identical to a clean run, with the retries visible in metrics;
//   (b) corrupt fact rows are quarantined — counters match the injected
//       corruption exactly — and the bellwether equals the one computed on
//       the clean subset of the data;
//   (c) the Lemma 1/2 scan-count telemetry still holds under retries;
//   (d) a cube build killed mid-scan resumes from its checkpoint and
//       produces output identical to an uninterrupted build.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/basic_search.h"
#include "core/bellwether_cube.h"
#include "core/training_data_gen.h"
#include "datagen/mail_order.h"
#include "datagen/simulation.h"
#include "obs/metrics.h"
#include "robust/fault_injection.h"
#include "storage/retrying_source.h"
#include "storage/training_data.h"

namespace bellwether::core {
namespace {

class ScopedFaults {
 public:
  explicit ScopedFaults(const std::string& spec) {
    robust::FaultRegistry::Default().Disarm();
    const Status st = robust::FaultRegistry::Default().Arm(spec);
    EXPECT_TRUE(st.ok()) << st.ToString();
  }
  ~ScopedFaults() { robust::FaultRegistry::Default().Disarm(); }
};

datagen::SimulationDataset MakeSim(uint64_t seed) {
  datagen::SimulationConfig config;
  config.num_items = 200;
  config.generator_tree_nodes = 7;
  config.noise = 0.2;
  config.num_windows = 3;
  config.location_fanouts = {2, 2};
  config.seed = seed;
  return datagen::GenerateSimulation(config);
}

datagen::MailOrderDataset MakeMailOrder() {
  datagen::MailOrderConfig config;
  config.num_items = 120;
  config.density = 1.2;
  config.seed = 5;
  return datagen::GenerateMailOrder(config);
}

// ---- (a) + (c): basic search under transient scan failures ----

TEST(FaultPipelineTest, BasicSearchIdenticalUnderScanRetries) {
  datagen::SimulationDataset sim = MakeSim(31);
  storage::MemoryTrainingData clean_src(sim.sets);
  storage::MemoryTrainingData faulty_inner(sim.sets);

  BasicSearchOptions options;
  options.estimate = regression::ErrorEstimate::kTrainingSet;
  auto clean = RunBasicBellwetherSearch(&clean_src, options);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  ASSERT_TRUE(clean->found());

  storage::RetryPolicy policy;
  policy.sleep_fn = [](int64_t) {};
  storage::RetryingTrainingDataSource source(&faulty_inner, policy);
  const int64_t retries_before =
      obs::DefaultMetrics().GetCounter(obs::kMStorageRetries)->Value();

  ScopedFaults faults("storage.scan:io@3");
  auto faulted = RunBasicBellwetherSearch(&source, options);
  ASSERT_TRUE(faulted.ok()) << faulted.status().ToString();

  // Bit-identical result despite three injected transient failures.
  EXPECT_EQ(faulted->bellwether, clean->bellwether);
  EXPECT_EQ(faulted->error.rmse, clean->error.rmse);
  ASSERT_EQ(faulted->model.beta().size(), clean->model.beta().size());
  for (size_t j = 0; j < clean->model.beta().size(); ++j) {
    EXPECT_EQ(faulted->model.beta()[j], clean->model.beta()[j]);
  }
  EXPECT_EQ(faulted->model_degradation, regression::FitDegradation::kNone);

  // The metrics registry recorded exactly the injected retries.
  EXPECT_EQ(source.retry_stats().retries, 3);
  EXPECT_EQ(obs::DefaultMetrics().GetCounter(obs::kMStorageRetries)->Value() -
                retries_before,
            3);

  // (c) Lemma telemetry: the wrapper reports one logical scan while the
  // inner source did 1 + 3 physical attempts.
  EXPECT_EQ(source.io_stats().sequential_scans, 1);
  EXPECT_EQ(faulty_inner.io_stats().sequential_scans, 4);
}

// ---- (b): row quarantine with an unchanged clean-subset bellwether ----

void ExpectSetsEqual(const std::vector<storage::RegionTrainingSet>& a,
                     const std::vector<storage::RegionTrainingSet>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].region, b[i].region) << "set " << i;
    EXPECT_EQ(a[i].items, b[i].items) << "set " << i;
    EXPECT_EQ(a[i].features, b[i].features) << "set " << i;
    EXPECT_EQ(a[i].targets, b[i].targets) << "set " << i;
    EXPECT_EQ(a[i].weights, b[i].weights) << "set " << i;
  }
}

TEST(FaultPipelineTest, QuarantinedRowsMatchInjectionAndCleanSubset) {
  datagen::MailOrderDataset db = MakeMailOrder();
  const BellwetherSpec spec = db.MakeSpec(/*budget=*/60.0,
                                          /*min_coverage=*/0.5);
  ASSERT_EQ(spec.row_policy, robust::RowErrorPolicy::kPermissive);
  const int64_t metric_before =
      obs::DefaultMetrics().GetCounter(obs::kMDatagenRowsQuarantined)->Value();

  constexpr int kCorrupt = 3;
  Result<GeneratedTrainingData> faulted = Status::IoError("not yet run");
  {
    ScopedFaults faults("datagen.row:corrupt@" + std::to_string(kCorrupt));
    faulted = GenerateTrainingDataInMemory(spec);
  }
  ASSERT_TRUE(faulted.ok()) << faulted.status().ToString();
  // Quarantine counters equal the injected corruption exactly.
  EXPECT_EQ(faulted->profile.row_quarantine.rows_quarantined, kCorrupt);
  EXPECT_EQ(faulted->profile.row_quarantine.rows_seen,
            static_cast<int64_t>(db.fact.num_rows()));
  ASSERT_FALSE(faulted->profile.row_quarantine.sample_errors.empty());
  EXPECT_NE(faulted->profile.row_quarantine.sample_errors[0].find(
                "injected corrupt row"),
            std::string::npos);
  EXPECT_EQ(obs::DefaultMetrics()
                    .GetCounter(obs::kMDatagenRowsQuarantined)
                    ->Value() -
                metric_before,
            kCorrupt);

  // The count trigger corrupts exactly the first kCorrupt fact rows, so the
  // clean subset is the fact table without them.
  table::Table trimmed(db.fact.schema());
  std::vector<table::Value> row(db.fact.num_columns());
  for (size_t r = kCorrupt; r < db.fact.num_rows(); ++r) {
    for (size_t c = 0; c < db.fact.num_columns(); ++c) {
      row[c] = db.fact.ValueAt(r, c);
    }
    trimmed.AppendRow(row);
  }
  BellwetherSpec clean_spec = spec;
  clean_spec.fact = &trimmed;
  auto clean = GenerateTrainingDataInMemory(clean_spec);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  EXPECT_EQ(clean->profile.row_quarantine.rows_quarantined, 0);

  // Identical training data...
  EXPECT_EQ(faulted->profile.targets, clean->profile.targets);
  ExpectSetsEqual(*faulted->memory_sets(), *clean->memory_sets());

  // ...and therefore an identical bellwether.
  storage::TrainingDataSource& faulted_src = *faulted->source;
  storage::TrainingDataSource& clean_src = *clean->source;
  BasicSearchOptions options;
  options.estimate = regression::ErrorEstimate::kTrainingSet;
  auto a = RunBasicBellwetherSearch(&faulted_src, options);
  auto b = RunBasicBellwetherSearch(&clean_src, options);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->bellwether, b->bellwether);
  EXPECT_EQ(a->error.rmse, b->error.rmse);
}

TEST(FaultPipelineTest, StrictPolicyFailsNamingTheRow) {
  datagen::MailOrderDataset db = MakeMailOrder();
  BellwetherSpec spec = db.MakeSpec(60.0, 0.5);
  spec.row_policy = robust::RowErrorPolicy::kStrict;
  ScopedFaults faults("datagen.row:corrupt@1");
  auto data = GenerateTrainingDataInMemory(spec);
  ASSERT_FALSE(data.ok());
  EXPECT_EQ(data.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(data.status().ToString().find("fact row 0"), std::string::npos);
}

TEST(FaultPipelineTest, ProbabilisticCorruptionCompletesWithExactCounters) {
  datagen::MailOrderDataset db = MakeMailOrder();
  const BellwetherSpec spec = db.MakeSpec(60.0, 0.5);
  robust::FaultRegistry::Default().set_seed(2026);
  ScopedFaults faults("datagen.row:corrupt@0.02");
  auto data = GenerateTrainingDataInMemory(spec);
  ASSERT_TRUE(data.ok()) << data.status().ToString();
  const int64_t injected =
      robust::FaultRegistry::Default().fires(robust::kFaultDatagenRow);
  EXPECT_GT(injected, 0);  // ~2% of a >1000-row fact table
  EXPECT_EQ(data->profile.row_quarantine.rows_quarantined, injected);
  // The pipeline still produces a usable bellwether.
  storage::TrainingDataSource& source = *data->source;
  BasicSearchOptions options;
  options.estimate = regression::ErrorEstimate::kTrainingSet;
  auto result = RunBasicBellwetherSearch(&source, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->found());
}

// ---- (c) continued: single-scan cube telemetry under retries ----

TEST(FaultPipelineTest, SingleScanCubeIdenticalUnderRetries) {
  datagen::SimulationDataset sim = MakeSim(33);
  auto subsets = ItemSubsetSpace::Create(sim.items, sim.item_hierarchies);
  ASSERT_TRUE(subsets.ok());
  CubeBuildConfig config;
  config.min_subset_size = 20;
  config.min_examples_per_model = 8;
  config.compute_cv_stats = false;

  storage::MemoryTrainingData clean_src(sim.sets);
  auto clean = BuildBellwetherCubeSingleScan(&clean_src, *subsets, config);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();

  storage::MemoryTrainingData faulty_inner(sim.sets);
  storage::RetryPolicy policy;
  policy.sleep_fn = [](int64_t) {};
  storage::RetryingTrainingDataSource source(&faulty_inner, policy);
  ScopedFaults faults("storage.scan:io@2");
  auto faulted = BuildBellwetherCubeSingleScan(&source, *subsets, config);
  ASSERT_TRUE(faulted.ok()) << faulted.status().ToString();

  // Lemma 2 telemetry holds at the wrapper: one logical pass.
  EXPECT_EQ(faulted->build_telemetry().data_passes, 1);
  EXPECT_EQ(source.io_stats().sequential_scans, 1);
  EXPECT_EQ(source.retry_stats().retries, 2);

  ASSERT_EQ(faulted->cells().size(), clean->cells().size());
  for (size_t i = 0; i < clean->cells().size(); ++i) {
    EXPECT_EQ(faulted->cells()[i].subset, clean->cells()[i].subset);
    EXPECT_EQ(faulted->cells()[i].region, clean->cells()[i].region);
    EXPECT_EQ(faulted->cells()[i].error, clean->cells()[i].error);
    EXPECT_EQ(faulted->cells()[i].model.beta(), clean->cells()[i].model.beta());
  }
}

// ---- (d): checkpoint/resume of a killed cube build ----

TEST(FaultPipelineTest, KilledCubeBuildResumesIdentically) {
  datagen::SimulationDataset sim = MakeSim(35);
  auto subsets = ItemSubsetSpace::Create(sim.items, sim.item_hierarchies);
  ASSERT_TRUE(subsets.ok());

  CubeBuildConfig base;
  base.min_subset_size = 20;
  base.min_examples_per_model = 8;
  base.compute_cv_stats = false;

  storage::MemoryTrainingData ref_src(sim.sets);
  auto ref = BuildBellwetherCubeSingleScan(&ref_src, *subsets, base);
  ASSERT_TRUE(ref.ok()) << ref.status().ToString();

  CubeBuildConfig ckpt_config = base;
  ckpt_config.checkpoint_path = ::testing::TempDir() + "/cube_resume.bwk";
  ckpt_config.checkpoint_every = 1;

  {
    // "Kill" the build right after the first region's checkpoint.
    ScopedFaults faults("cube.scan:crash@1");
    storage::MemoryTrainingData src(sim.sets);
    auto crashed = BuildBellwetherCubeSingleScan(&src, *subsets, ckpt_config);
    ASSERT_FALSE(crashed.ok());
    EXPECT_EQ(crashed.status().code(), StatusCode::kIoError);
  }

  const int64_t resumes_before =
      obs::DefaultMetrics()
          .GetCounter(obs::kMCubeCheckpointResumes)
          ->Value();
  storage::MemoryTrainingData resume_src(sim.sets);
  auto resumed =
      BuildBellwetherCubeSingleScan(&resume_src, *subsets, ckpt_config);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(resumed->build_telemetry().resumed_regions, 1);
  EXPECT_GE(resumed->build_telemetry().checkpoints_saved, 1);
  EXPECT_EQ(obs::DefaultMetrics()
                    .GetCounter(obs::kMCubeCheckpointResumes)
                    ->Value() -
                resumes_before,
            1);

  // Bit-identical to the uninterrupted build.
  ASSERT_EQ(resumed->cells().size(), ref->cells().size());
  for (size_t i = 0; i < ref->cells().size(); ++i) {
    EXPECT_EQ(resumed->cells()[i].subset, ref->cells()[i].subset);
    EXPECT_EQ(resumed->cells()[i].region, ref->cells()[i].region);
    EXPECT_EQ(resumed->cells()[i].error, ref->cells()[i].error);
    EXPECT_EQ(resumed->cells()[i].has_model, ref->cells()[i].has_model);
    EXPECT_EQ(resumed->cells()[i].model.beta(), ref->cells()[i].model.beta());
    EXPECT_EQ(resumed->cells()[i].degradation, ref->cells()[i].degradation);
    EXPECT_EQ(resumed->cells()[i].fallback_pick,
              ref->cells()[i].fallback_pick);
  }
  std::remove(ckpt_config.checkpoint_path.c_str());
}

TEST(FaultPipelineTest, StaleCheckpointIsIgnored) {
  datagen::SimulationDataset sim = MakeSim(37);
  auto subsets = ItemSubsetSpace::Create(sim.items, sim.item_hierarchies);
  ASSERT_TRUE(subsets.ok());

  CubeBuildConfig config;
  config.min_subset_size = 20;
  config.min_examples_per_model = 8;
  config.compute_cv_stats = false;
  config.checkpoint_path = ::testing::TempDir() + "/cube_stale.bwk";

  storage::MemoryTrainingData src1(sim.sets);
  auto first = BuildBellwetherCubeSingleScan(&src1, *subsets, config);
  ASSERT_TRUE(first.ok());

  // A different significance threshold changes the build fingerprint, so
  // the leftover checkpoint must not be resumed.
  CubeBuildConfig other = config;
  other.min_subset_size = 40;
  storage::MemoryTrainingData src2(sim.sets);
  auto second = BuildBellwetherCubeSingleScan(&src2, *subsets, other);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second->build_telemetry().resumed_regions, 0);

  storage::MemoryTrainingData ref_src(sim.sets);
  CubeBuildConfig no_ckpt = other;
  no_ckpt.checkpoint_path.clear();
  auto ref = BuildBellwetherCubeSingleScan(&ref_src, *subsets, no_ckpt);
  ASSERT_TRUE(ref.ok());
  ASSERT_EQ(second->cells().size(), ref->cells().size());
  for (size_t i = 0; i < ref->cells().size(); ++i) {
    EXPECT_EQ(second->cells()[i].region, ref->cells()[i].region);
    EXPECT_EQ(second->cells()[i].error, ref->cells()[i].error);
  }
  std::remove(config.checkpoint_path.c_str());
}

}  // namespace
}  // namespace bellwether::core
