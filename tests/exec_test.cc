// Tests of the parallel execution layer (src/exec/): thread-pool basics and
// draining, ParallelFor/ParallelMap index coverage, the ordered streaming
// reduce (MergeInSubmissionOrder), its error propagation, and the exec
// metrics. The stress cases double as the TSAN targets of the tsan preset.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "exec/parallel.h"
#include "exec/thread_pool.h"
#include "obs/metrics.h"

namespace bellwether::exec {
namespace {

TEST(ResolveNumThreadsTest, Mapping) {
  EXPECT_EQ(ResolveNumThreads(1), 1);
  EXPECT_EQ(ResolveNumThreads(4), 4);
  EXPECT_EQ(ResolveNumThreads(-3), 1);
  const int32_t hw = ResolveNumThreads(0);
  EXPECT_GE(hw, 1);
  EXPECT_EQ(static_cast<uint32_t>(hw),
            std::max(1u, std::thread::hardware_concurrency()));
}

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::atomic<int64_t> sum{0};
  for (int i = 1; i <= 100; ++i) {
    pool.Submit([&sum, i] { sum.fetch_add(i); });
  }
  pool.Wait();
  EXPECT_EQ(sum.load(), 5050);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int64_t> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&ran] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ran.fetch_add(1);
      });
    }
    // No Wait(): destruction must still run everything.
  }
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPoolTest, SubmitFromMultipleThreadsStress) {
  // TSAN target: several producers hammering one pool.
  ThreadPool pool(4);
  std::atomic<int64_t> sum{0};
  std::vector<std::thread> producers;
  for (int t = 0; t < 3; ++t) {
    producers.emplace_back([&pool, &sum] {
      for (int i = 0; i < 500; ++i) {
        pool.Submit([&sum] { sum.fetch_add(1); });
      }
    });
  }
  for (auto& p : producers) p.join();
  pool.Wait();
  EXPECT_EQ(sum.load(), 1500);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  for (int32_t threads : {1, 2, 4}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<int32_t>> hits(1000);
    for (auto& h : hits) h = 0;
    ParallelFor(threads > 1 ? &pool : nullptr, hits.size(),
                [&](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ParallelForTest, ZeroAndOneElement) {
  ThreadPool pool(2);
  int calls = 0;
  ParallelFor(&pool, 0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  ParallelFor(&pool, 1, [&](size_t i) { calls += static_cast<int>(i) + 1; });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelMapTest, ResultsInIndexOrder) {
  ThreadPool pool(4);
  const std::vector<int64_t> out = ParallelMap<int64_t>(
      &pool, 257, [](size_t i) { return static_cast<int64_t>(i * i); });
  ASSERT_EQ(out.size(), 257u);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int64_t>(i * i));
  }
}

TEST(MergeInSubmissionOrderTest, SerialRunsInlineAndInOrder) {
  std::vector<size_t> reduced;
  MergeInSubmissionOrder<size_t> reducer(
      nullptr, 8, "test.serial", [&](size_t index, size_t value) -> Status {
        EXPECT_EQ(index, value);
        reduced.push_back(value);
        return Status::OK();
      });
  EXPECT_FALSE(reducer.parallel());
  for (size_t i = 0; i < 10; ++i) {
    // Inline execution: the result is reduced before Submit returns, so the
    // task may capture loop-local state by reference.
    ASSERT_TRUE(reducer.Submit([&i] { return i; }).ok());
    EXPECT_EQ(reduced.size(), i + 1);
  }
  ASSERT_TRUE(reducer.Finish().ok());
  EXPECT_EQ(reduced.size(), 10u);
}

TEST(MergeInSubmissionOrderTest, ParallelReducesInSubmissionOrder) {
  ThreadPool pool(4);
  std::vector<size_t> reduced;
  MergeInSubmissionOrder<size_t> reducer(
      &pool, 8, "test.ordered", [&](size_t index, size_t value) -> Status {
        EXPECT_EQ(index, value);
        EXPECT_EQ(reduced.size(), index);
        reduced.push_back(value);
        return Status::OK();
      });
  EXPECT_TRUE(reducer.parallel());
  for (size_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(reducer.Submit([i] {
                        // Earlier tasks sleep longer, so completion order is
                        // roughly the reverse of submission order.
                        std::this_thread::sleep_for(
                            std::chrono::microseconds((100 - i) * 5));
                        return i;
                      })
                    .ok());
  }
  ASSERT_TRUE(reducer.Finish().ok());
  ASSERT_EQ(reduced.size(), 100u);
  for (size_t i = 0; i < reduced.size(); ++i) EXPECT_EQ(reduced[i], i);
}

TEST(MergeInSubmissionOrderTest, BoundedOutstandingWindow) {
  ThreadPool pool(2);
  std::atomic<int64_t> completed{0};
  size_t reduced = 0;
  MergeInSubmissionOrder<int> reducer(
      &pool, 4, "test.window", [&](size_t, int) -> Status {
        ++reduced;
        return Status::OK();
      });
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(reducer.Submit([&completed] {
                        completed.fetch_add(1);
                        return 0;
                      })
                    .ok());
    // At most max_outstanding results may be pending un-reduced.
    EXPECT_LE(static_cast<size_t>(i) + 1 - reduced, 4u);
  }
  ASSERT_TRUE(reducer.Finish().ok());
  EXPECT_EQ(reduced, 32u);
  EXPECT_EQ(completed.load(), 32);
}

TEST(MergeInSubmissionOrderTest, ReduceErrorAbortsStream) {
  ThreadPool pool(2);
  size_t reduced = 0;
  MergeInSubmissionOrder<size_t> reducer(
      &pool, 1, "test.error", [&](size_t index, size_t) -> Status {
        ++reduced;
        if (index == 2) return Status::Internal("stop here");
        return Status::OK();
      });
  Status st;
  size_t submitted = 0;
  for (size_t i = 0; i < 10 && st.ok(); ++i) {
    st = reducer.Submit([i] { return i; });
    ++submitted;
  }
  if (st.ok()) st = reducer.Finish();
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_EQ(reduced, 3u);  // indices 0, 1, 2
  EXPECT_LT(submitted, 10u);
}

TEST(ExecMetricsTest, TasksSubmittedCounterAdvances) {
  obs::Counter* submitted =
      obs::DefaultMetrics().GetCounter(obs::kMExecTasksSubmitted);
  const int64_t before = submitted->Value();
  ThreadPool pool(2);
  for (int i = 0; i < 17; ++i) {
    pool.Submit([] {});
  }
  pool.Wait();
  EXPECT_EQ(submitted->Value() - before, 17);
  // Busy-seconds accumulates (weakly: tasks are near-instant, so just check
  // the gauge exists and is non-negative).
  EXPECT_GE(obs::DefaultMetrics()
                .GetGauge(obs::kMExecWorkerBusySeconds)
                ->Value(),
            0.0);
}

}  // namespace
}  // namespace bellwether::exec
