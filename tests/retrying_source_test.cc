// RetryingTrainingDataSource under deterministic fault injection: transient
// scan/read failures are retried with bounded exponential backoff, records
// are delivered exactly once in order, and a retried scan still counts as
// one logical sequential scan (the Lemma 1/2 telemetry contract).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "datagen/simulation.h"
#include "obs/metrics.h"
#include "robust/fault_injection.h"
#include "storage/retrying_source.h"
#include "storage/training_data.h"

namespace bellwether::storage {
namespace {

// Arms the process-default fault registry for one test and guarantees it is
// disarmed again, so no schedule can leak into other tests of this binary.
class ScopedFaults {
 public:
  explicit ScopedFaults(const std::string& spec) {
    robust::FaultRegistry::Default().Disarm();
    const Status st = robust::FaultRegistry::Default().Arm(spec);
    EXPECT_TRUE(st.ok()) << st.ToString();
  }
  ~ScopedFaults() { robust::FaultRegistry::Default().Disarm(); }
};

datagen::SimulationDataset MakeSim(uint64_t seed) {
  datagen::SimulationConfig config;
  config.num_items = 120;
  config.generator_tree_nodes = 7;
  config.noise = 0.2;
  config.num_windows = 2;
  config.location_fanouts = {2, 2};
  config.seed = seed;
  return datagen::GenerateSimulation(config);
}

std::vector<olap::RegionId> ScanRegions(TrainingDataSource* source,
                                        Status* out_status = nullptr) {
  std::vector<olap::RegionId> regions;
  const Status st = source->Scan([&](const RegionTrainingSet& s) -> Status {
    regions.push_back(s.region);
    return Status::OK();
  });
  if (out_status != nullptr) *out_status = st;
  return regions;
}

int64_t RetriesMetric() {
  return obs::DefaultMetrics().GetCounter(obs::kMStorageRetries)->Value();
}

TEST(RetryingSourceTest, CleanScanIsPassThrough) {
  datagen::SimulationDataset sim = MakeSim(21);
  MemoryTrainingData inner(sim.sets);
  MemoryTrainingData direct(sim.sets);
  RetryingTrainingDataSource source(&inner);
  Status st;
  const auto wrapped = ScanRegions(&source, &st);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(wrapped, ScanRegions(&direct));
  EXPECT_EQ(source.retry_stats().retries, 0);
  EXPECT_EQ(source.io_stats().sequential_scans, 1);
  EXPECT_EQ(inner.io_stats().sequential_scans, 1);
}

TEST(RetryingSourceTest, ScanSucceedsAfterTransientFailures) {
  datagen::SimulationDataset sim = MakeSim(22);
  MemoryTrainingData inner(sim.sets);
  MemoryTrainingData clean(sim.sets);
  std::vector<int64_t> sleeps;
  RetryPolicy policy;
  policy.sleep_fn = [&](int64_t micros) { sleeps.push_back(micros); };
  RetryingTrainingDataSource source(&inner, policy);

  const int64_t retries_before = RetriesMetric();
  ScopedFaults faults("storage.scan:io@2");
  Status st;
  const auto regions = ScanRegions(&source, &st);
  ASSERT_TRUE(st.ok()) << st.ToString();

  // Exactly-once, in-order delivery despite two physical restarts.
  EXPECT_EQ(regions, ScanRegions(&clean));
  EXPECT_EQ(source.retry_stats().retries, 2);
  EXPECT_EQ(source.retry_stats().exhaustions, 0);
  EXPECT_EQ(sleeps.size(), 2u);
  // The wrapper reports ONE logical scan; the inner source exposes the three
  // physical attempts.
  EXPECT_EQ(source.io_stats().sequential_scans, 1);
  EXPECT_EQ(inner.io_stats().sequential_scans, 3);
  // Retries were mirrored into the metrics registry.
  EXPECT_EQ(RetriesMetric() - retries_before, 2);
}

TEST(RetryingSourceTest, BackoffGrowsAndIsCapped) {
  datagen::SimulationDataset sim = MakeSim(23);
  MemoryTrainingData inner(sim.sets);
  std::vector<int64_t> sleeps;
  RetryPolicy policy;
  policy.initial_backoff_micros = 1000;
  policy.multiplier = 10.0;
  policy.max_backoff_micros = 5000;
  policy.jitter = 0.0;
  policy.sleep_fn = [&](int64_t micros) { sleeps.push_back(micros); };
  RetryingTrainingDataSource source(&inner, policy);

  ScopedFaults faults("storage.scan:io@3");
  Status st;
  ScanRegions(&source, &st);
  ASSERT_TRUE(st.ok()) << st.ToString();
  ASSERT_EQ(sleeps.size(), 3u);
  EXPECT_EQ(sleeps[0], 1000);
  EXPECT_EQ(sleeps[1], 5000);  // 10000 capped at max_backoff_micros
  EXPECT_EQ(sleeps[2], 5000);
}

TEST(RetryingSourceTest, JitterStaysWithinBand) {
  datagen::SimulationDataset sim = MakeSim(24);
  MemoryTrainingData inner(sim.sets);
  std::vector<int64_t> sleeps;
  RetryPolicy policy;
  policy.max_retries = 5;
  policy.initial_backoff_micros = 10000;
  policy.multiplier = 1.0;
  policy.jitter = 0.25;
  policy.sleep_fn = [&](int64_t micros) { sleeps.push_back(micros); };
  RetryingTrainingDataSource source(&inner, policy);

  ScopedFaults faults("storage.scan:io@5");
  Status st;
  ScanRegions(&source, &st);
  ASSERT_TRUE(st.ok()) << st.ToString();
  ASSERT_EQ(sleeps.size(), 5u);
  for (int64_t s : sleeps) {
    EXPECT_GE(s, 7500);
    EXPECT_LE(s, 12500);
  }
}

TEST(RetryingSourceTest, ExhaustionPropagatesIoError) {
  datagen::SimulationDataset sim = MakeSim(25);
  MemoryTrainingData inner(sim.sets);
  RetryPolicy policy;
  policy.max_retries = 2;
  policy.sleep_fn = [](int64_t) {};
  RetryingTrainingDataSource source(&inner, policy);

  const int64_t exhausted_before =
      obs::DefaultMetrics().GetCounter(obs::kMStorageRetryExhausted)->Value();
  ScopedFaults faults("storage.scan:io@100");
  Status st;
  ScanRegions(&source, &st);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  EXPECT_EQ(source.retry_stats().retries, 2);
  EXPECT_EQ(source.retry_stats().exhaustions, 1);
  EXPECT_EQ(obs::DefaultMetrics()
                    .GetCounter(obs::kMStorageRetryExhausted)
                    ->Value() -
                exhausted_before,
            1);
}

TEST(RetryingSourceTest, CallbackErrorsAreNeverRetried) {
  datagen::SimulationDataset sim = MakeSim(26);
  MemoryTrainingData inner(sim.sets);
  RetryingTrainingDataSource source(&inner);
  int calls = 0;
  const Status st = source.Scan([&](const RegionTrainingSet&) -> Status {
    ++calls;
    return Status::InvalidArgument("consumer rejected the record");
  });
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(source.retry_stats().retries, 0);
  EXPECT_EQ(inner.io_stats().sequential_scans, 1);
}

TEST(RetryingSourceTest, NonIoErrorsFromInnerAreNotRetried) {
  datagen::SimulationDataset sim = MakeSim(27);
  MemoryTrainingData inner(sim.sets);
  RetryingTrainingDataSource source(&inner);
  // kCorrupt armed at an io-honoring point never fires, but an out-of-range
  // Read returns a non-IoError status that must pass straight through.
  auto r = source.Read(inner.num_region_sets() + 100);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().code(), StatusCode::kIoError);
  EXPECT_EQ(source.retry_stats().retries, 0);
}

TEST(RetryingSourceTest, ReadRetriesTransientFailures) {
  datagen::SimulationDataset sim = MakeSim(28);
  MemoryTrainingData inner(sim.sets);
  MemoryTrainingData clean(sim.sets);
  RetryPolicy policy;
  policy.sleep_fn = [](int64_t) {};
  RetryingTrainingDataSource source(&inner, policy);

  ScopedFaults faults("storage.read:io@1");
  auto r = source.Read(0);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(source.retry_stats().retries, 1);
  auto expected = clean.Read(0);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(r->region, expected->region);
  EXPECT_EQ(r->targets, expected->targets);
}

}  // namespace
}  // namespace bellwether::storage
