// Corruption hardening of the model/tree/cube loaders: truncated files and
// byte flips fail with clean statuses (never a crash or a partial object),
// version-mismatched headers are told apart from garbage, implausible counts
// are rejected before allocation, and non-finite values round-trip.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <string>

#include <sstream>

#include "common/random.h"
#include "core/bellwether_cube.h"
#include "core/bellwether_state.h"
#include "core/bellwether_tree.h"
#include "core/model_io.h"
#include "datagen/simulation.h"
#include "regression/linear_model.h"
#include "regression/suff_stats_io.h"
#include "storage/training_data.h"

namespace bellwether::core {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::string ReadAll(const std::string& path) {
  std::ifstream in(path);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  out << content;
}

datagen::SimulationDataset MakeSim(uint64_t seed) {
  datagen::SimulationConfig config;
  config.num_items = 200;
  config.generator_tree_nodes = 7;
  config.noise = 0.2;
  config.num_windows = 3;
  config.location_fanouts = {2, 2};
  config.seed = seed;
  return datagen::GenerateSimulation(config);
}

TEST(ModelIoCorruptionTest, VersionMismatchIsFailedPrecondition) {
  const std::string path = ::testing::TempDir() + "/old_version.bwl";
  WriteAll(path, "bellwether-linear-v0\n42\n1 1.5\n");
  auto r = LoadLinearModel(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(ModelIoCorruptionTest, WrongArtifactKindIsFailedPrecondition) {
  // A valid tree file handed to the cube loader: recognizably ours, but the
  // wrong kind — the caller picked the wrong loader, not a corrupt file.
  const std::string path = ::testing::TempDir() + "/kind.bwc";
  WriteAll(path, "bellwether-tree-v2\n0\n1\n");
  auto r = LoadBellwetherCube(path, nullptr);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(ModelIoCorruptionTest, GarbageMagicIsInvalidArgument) {
  const std::string path = ::testing::TempDir() + "/garbage.bwl";
  WriteAll(path, "#!/bin/sh\necho not a model\n");
  auto r = LoadLinearModel(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(ModelIoCorruptionTest, ImplausibleVectorLengthIsRejected) {
  // A corrupt length field must not become a huge allocation.
  const std::string path = ::testing::TempDir() + "/huge.bwl";
  WriteAll(path, "bellwether-linear-v1\n42\n9999999999999 1.5\n");
  auto r = LoadLinearModel(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

TEST(ModelIoCorruptionTest, LinearModelWithInfAndNanRoundTrips) {
  const std::string path = ::testing::TempDir() + "/inf.bwl";
  regression::LinearModel model({kInf, -kInf, 1.0});
  ASSERT_TRUE(SaveLinearModel(model, 7, path).ok());
  auto back = LoadLinearModel(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->model.beta().size(), 3u);
  EXPECT_EQ(back->model.beta()[0], kInf);
  EXPECT_EQ(back->model.beta()[1], -kInf);
  EXPECT_EQ(back->model.beta()[2], 1.0);
  std::remove(path.c_str());
}

TEST(ModelIoCorruptionTest, DegradedCubeCellRoundTrips) {
  datagen::SimulationDataset sim = MakeSim(81);
  auto subsets = ItemSubsetSpace::Create(sim.items, sim.item_hierarchies);
  ASSERT_TRUE(subsets.ok());
  storage::MemoryTrainingData source(sim.sets);
  CubeBuildConfig config;
  config.min_subset_size = 20;
  config.min_examples_per_model = 8;
  config.compute_cv_stats = false;
  auto cube = BuildBellwetherCubeOptimized(&source, *subsets, config);
  ASSERT_TRUE(cube.ok());
  ASSERT_FALSE(cube->cells().empty());
  // Simulate a degraded, fallback-picked cell (error = +inf) as produced by
  // the graceful-degradation chain, and check the loader preserves it.
  CubeCell& cell = cube->mutable_cells()[0];
  cell.error = kInf;
  cell.degradation = regression::FitDegradation::kMeanFallback;
  cell.fallback_pick = true;

  const std::string path = ::testing::TempDir() + "/degraded.bwc";
  ASSERT_TRUE(SaveBellwetherCube(*cube, path).ok());
  auto back = LoadBellwetherCube(path, *subsets);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->cells()[0].error, kInf);
  EXPECT_EQ(back->cells()[0].degradation,
            regression::FitDegradation::kMeanFallback);
  EXPECT_TRUE(back->cells()[0].fallback_pick);
  EXPECT_EQ(back->cells()[1].degradation, regression::FitDegradation::kNone);
  EXPECT_FALSE(back->cells()[1].fallback_pick);
  std::remove(path.c_str());
}

TEST(ModelIoCorruptionTest, TruncatedCubeFailsCleanlyAtEveryBoundary) {
  datagen::SimulationDataset sim = MakeSim(83);
  auto subsets = ItemSubsetSpace::Create(sim.items, sim.item_hierarchies);
  ASSERT_TRUE(subsets.ok());
  storage::MemoryTrainingData source(sim.sets);
  CubeBuildConfig config;
  config.min_subset_size = 20;
  config.min_examples_per_model = 8;
  config.compute_cv_stats = false;
  auto cube = BuildBellwetherCubeOptimized(&source, *subsets, config);
  ASSERT_TRUE(cube.ok());
  const std::string path = ::testing::TempDir() + "/trunc.bwc";
  ASSERT_TRUE(SaveBellwetherCube(*cube, path).ok());
  const std::string content = ReadAll(path);
  ASSERT_GT(content.size(), 100u);

  // Section boundaries: end of magic, end of header, mid first cell, and a
  // cut inside the last cell's model vector.
  const size_t magic_end = content.find('\n') + 1;
  const size_t header_end = content.find('\n', magic_end) + 1;
  for (size_t cut : {size_t{0}, magic_end, header_end, header_end + 10,
                     content.size() / 2}) {
    WriteAll(path, content.substr(0, cut));
    auto r = LoadBellwetherCube(path, *subsets);
    ASSERT_FALSE(r.ok()) << "cut at " << cut;
    EXPECT_EQ(r.status().code(), StatusCode::kIoError) << "cut at " << cut;
  }
  std::remove(path.c_str());
}

TEST(ModelIoCorruptionTest, TruncatedTreeFailsCleanly) {
  datagen::SimulationDataset sim = MakeSim(85);
  storage::MemoryTrainingData source(sim.sets);
  TreeBuildConfig config;
  config.split_columns = sim.feature_columns;
  config.min_items = 40;
  config.max_depth = 3;
  config.min_examples_per_model = 10;
  auto tree = BuildBellwetherTreeRainForest(&source, sim.items, config);
  ASSERT_TRUE(tree.ok());
  const std::string path = ::testing::TempDir() + "/trunc.bwt";
  ASSERT_TRUE(SaveBellwetherTree(*tree, path).ok());
  const std::string content = ReadAll(path);
  // Section boundaries: after the magic (missing column count), after the
  // column count (missing column names), and inside the first node header.
  const size_t magic_end = content.find('\n') + 1;
  const size_t col_count_end = content.find('\n', magic_end) + 1;
  size_t nodes_start = col_count_end;
  for (size_t i = 0; i < sim.feature_columns.size() + 1; ++i) {
    nodes_start = content.find('\n', nodes_start) + 1;
  }
  for (size_t cut : {magic_end, col_count_end, nodes_start + 2}) {
    WriteAll(path, content.substr(0, cut));
    auto r = LoadBellwetherTree(path, sim.items);
    ASSERT_FALSE(r.ok()) << "cut at " << cut;
    EXPECT_EQ(r.status().code(), StatusCode::kIoError) << "cut at " << cut;
  }
  std::remove(path.c_str());
}

TEST(ModelIoCorruptionTest, ByteFlipsNeverCrashTheLoader) {
  datagen::SimulationDataset sim = MakeSim(87);
  storage::MemoryTrainingData source(sim.sets);
  TreeBuildConfig config;
  config.split_columns = sim.feature_columns;
  config.min_items = 40;
  config.max_depth = 3;
  config.min_examples_per_model = 10;
  auto tree = BuildBellwetherTreeRainForest(&source, sim.items, config);
  ASSERT_TRUE(tree.ok());
  const std::string path = ::testing::TempDir() + "/flip.bwt";
  ASSERT_TRUE(SaveBellwetherTree(*tree, path).ok());
  const std::string content = ReadAll(path);
  // Overwrite single bytes with a value no valid token contains; the loader
  // must return an error (or, for bytes in string sections, a clean load) —
  // never crash or over-allocate. ASan/UBSan builds give this test teeth.
  for (size_t pos = 0; pos < content.size();
       pos += content.size() / 37 + 1) {
    std::string flipped = content;
    flipped[pos] = '\x01';
    WriteAll(path, flipped);
    auto r = LoadBellwetherTree(path, sim.items);
    (void)r;  // any Status is acceptable; crashing is not
  }
  std::remove(path.c_str());
}

// ---- Packed sufficient-statistics wire format ----

TEST(SuffStatsIoTest, PackedStatsRoundTripForEveryArity) {
  Rng rng(123);
  for (size_t p = 1; p <= 8; ++p) {
    SCOPED_TRACE("p=" + std::to_string(p));
    regression::RegressionSuffStats stats(p);
    std::vector<double> x(p);
    for (int i = 0; i < 40; ++i) {
      for (double& v : x) v = rng.NextGaussian();
      stats.Add(x.data(), rng.NextGaussian(), 1.0 + rng.NextDouble());
    }
    std::stringstream wire;
    regression::WriteSuffStats(wire, stats);
    auto back = regression::ReadSuffStats(wire);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(back->num_features(), p);
    EXPECT_EQ(back->num_examples(), stats.num_examples());
    EXPECT_EQ(back->sum_weights(), stats.sum_weights());
    // The packed triangle round-trips bit for bit (%.17g).
    EXPECT_EQ(back->packed_xtwx(), stats.packed_xtwx());
  }
}

TEST(SuffStatsIoTest, TruncatedTriangleIsIoError) {
  regression::RegressionSuffStats stats(4);
  std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  stats.Add(x.data(), 1.5);
  std::stringstream wire;
  regression::WriteSuffStats(wire, stats);
  std::string line = wire.str();
  // Cut inside the packed-triangle section (after the 6th token: tag, p, n,
  // sum_w, ytwy, first triangle value).
  size_t pos = 0;
  for (int tok = 0; tok < 6; ++tok) pos = line.find(' ', pos + 1);
  std::stringstream cut(line.substr(0, pos));
  auto r = regression::ReadSuffStats(cut);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(SuffStatsIoTest, ImplausibleCountsAreRejectedBeforeAllocation) {
  // Arity beyond the 4096 bound: would be a ~8M-doubles triangle.
  std::stringstream huge_p("stats 99999999 1 1 0\n");
  auto rp = regression::ReadSuffStats(huge_p);
  ASSERT_FALSE(rp.ok());
  EXPECT_EQ(rp.status().code(), StatusCode::kIoError);

  // Example count beyond 2^48: no real scan produces it — corruption.
  std::stringstream huge_n("stats 1 999999999999999999 1 0 1 1\n");
  auto rn = regression::ReadSuffStats(huge_n);
  ASSERT_FALSE(rn.ok());
  EXPECT_EQ(rn.status().code(), StatusCode::kIoError);
}

// ---- Bellwether state files ----

class StateFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sim_ = MakeSim(89);
    auto subsets = ItemSubsetSpace::Create(sim_.items, sim_.item_hierarchies);
    ASSERT_TRUE(subsets.ok());
    subsets_ = *subsets;
    BellwetherState::Options options;
    options.config.min_subset_size = 20;
    options.config.min_examples_per_model = 8;
    auto state = BellwetherState::Init(subsets_, options);
    ASSERT_TRUE(state.ok());
    state_ = std::move(*state);
    ASSERT_TRUE(state_->ApplyDelta(sim_.sets).ok());
    path_ = ::testing::TempDir() + "/corrupt_state.bws";
    ASSERT_TRUE(state_->Save(path_).ok());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  datagen::SimulationDataset sim_;
  std::shared_ptr<const ItemSubsetSpace> subsets_;
  std::unique_ptr<BellwetherState> state_;
  std::string path_;
};

TEST_F(StateFileTest, WrongArtifactKindIsFailedPrecondition) {
  WriteAll(path_, "bellwether-cube-v2\n0 0\n");
  auto r = LoadBellwetherState(path_, subsets_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(StateFileTest, GarbageMagicIsInvalidArgument) {
  WriteAll(path_, "not a state file\n");
  auto r = LoadBellwetherState(path_, subsets_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(StateFileTest, TruncationFailsCleanlyAtEveryBoundary) {
  const std::string content = ReadAll(path_);
  ASSERT_GT(content.size(), 200u);
  // Boundaries: empty file, end of magic, mid-header, mid first region's
  // suff-stats, and a cut inside the retained-rows arrays.
  const size_t magic_end = content.find('\n') + 1;
  for (size_t cut : {size_t{0}, magic_end, magic_end + 20,
                     content.size() / 3, content.size() - 5}) {
    WriteAll(path_, content.substr(0, cut));
    auto r = LoadBellwetherState(path_, subsets_);
    ASSERT_FALSE(r.ok()) << "cut at " << cut;
    EXPECT_EQ(r.status().code(), StatusCode::kIoError) << "cut at " << cut;
  }
}

TEST_F(StateFileTest, ByteFlipsNeverCrashTheLoader) {
  const std::string content = ReadAll(path_);
  for (size_t pos = 0; pos < content.size();
       pos += content.size() / 41 + 1) {
    std::string flipped = content;
    flipped[pos] = '\x01';
    WriteAll(path_, flipped);
    auto r = LoadBellwetherState(path_, subsets_);
    (void)r;  // any Status is acceptable; crashing is not
  }
}

}  // namespace
}  // namespace bellwether::core
