// The determinism contract of the parallel execution layer
// (docs/PERFORMANCE.md): for every thread count — including
// hardware_concurrency — the basic search, the RainForest tree, and the
// single-scan cube produce artifacts bit-identical to the serial build;
// the same holds with deterministic faults armed, and checkpoints written
// by a parallel build are interchangeable with serial ones.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/basic_search.h"
#include "core/bellwether_cube.h"
#include "core/bellwether_tree.h"
#include "datagen/simulation.h"
#include "robust/fault_injection.h"
#include "storage/retrying_source.h"
#include "storage/training_data.h"

namespace bellwether::core {
namespace {

// 0 resolves to hardware_concurrency.
const int32_t kThreadCounts[] = {1, 2, 4, 0};

class ScopedFaults {
 public:
  explicit ScopedFaults(const std::string& spec) {
    robust::FaultRegistry::Default().Disarm();
    const Status st = robust::FaultRegistry::Default().Arm(spec);
    EXPECT_TRUE(st.ok()) << st.ToString();
  }
  ~ScopedFaults() { robust::FaultRegistry::Default().Disarm(); }
};

datagen::SimulationDataset MakeSim(uint64_t seed) {
  datagen::SimulationConfig config;
  config.num_items = 200;
  config.generator_tree_nodes = 7;
  config.noise = 0.2;
  config.num_windows = 3;
  config.location_fanouts = {2, 2};
  config.seed = seed;
  return datagen::GenerateSimulation(config);
}

void ExpectSearchIdentical(const BasicSearchResult& got,
                           const BasicSearchResult& want) {
  EXPECT_EQ(got.bellwether, want.bellwether);
  EXPECT_EQ(got.bellwether_index, want.bellwether_index);
  EXPECT_EQ(got.error.rmse, want.error.rmse);
  EXPECT_EQ(got.model.beta(), want.model.beta());
  EXPECT_EQ(got.model_degradation, want.model_degradation);
  ASSERT_EQ(got.scores.size(), want.scores.size());
  for (size_t i = 0; i < want.scores.size(); ++i) {
    EXPECT_EQ(got.scores[i].region, want.scores[i].region) << "score " << i;
    EXPECT_EQ(got.scores[i].source_index, want.scores[i].source_index);
    EXPECT_EQ(got.scores[i].usable, want.scores[i].usable);
    EXPECT_EQ(got.scores[i].num_examples, want.scores[i].num_examples);
    if (want.scores[i].usable) {
      EXPECT_EQ(got.scores[i].error.rmse, want.scores[i].error.rmse)
          << "score " << i;
    }
  }
  // Logical telemetry is part of the contract (scan_seconds is wall time
  // and exempt).
  EXPECT_EQ(got.telemetry.regions_enumerated,
            want.telemetry.regions_enumerated);
  EXPECT_EQ(got.telemetry.regions_scored, want.telemetry.regions_scored);
  EXPECT_EQ(got.telemetry.skipped_min_examples,
            want.telemetry.skipped_min_examples);
  EXPECT_EQ(got.telemetry.model_fit_failures,
            want.telemetry.model_fit_failures);
  EXPECT_EQ(got.telemetry.rows_scanned, want.telemetry.rows_scanned);
}

void ExpectTreesIdentical(const BellwetherTree& got,
                          const BellwetherTree& want) {
  ASSERT_EQ(got.nodes().size(), want.nodes().size());
  for (size_t i = 0; i < want.nodes().size(); ++i) {
    const TreeNode& a = got.nodes()[i];
    const TreeNode& b = want.nodes()[i];
    EXPECT_EQ(a.depth, b.depth) << "node " << i;
    EXPECT_EQ(a.num_items, b.num_items) << "node " << i;
    EXPECT_EQ(a.has_model, b.has_model) << "node " << i;
    EXPECT_EQ(a.region, b.region) << "node " << i;
    EXPECT_EQ(a.error, b.error) << "node " << i;
    EXPECT_EQ(a.model.beta(), b.model.beta()) << "node " << i;
    EXPECT_EQ(a.degradation, b.degradation) << "node " << i;
    EXPECT_EQ(a.goodness, b.goodness) << "node " << i;
    EXPECT_EQ(a.children, b.children) << "node " << i;
    EXPECT_EQ(a.split.column, b.split.column) << "node " << i;
    EXPECT_EQ(a.split.is_numeric, b.split.is_numeric) << "node " << i;
    EXPECT_EQ(a.split.threshold, b.split.threshold) << "node " << i;
  }
  EXPECT_EQ(got.build_telemetry().data_passes,
            want.build_telemetry().data_passes);
  EXPECT_EQ(got.build_telemetry().candidates_evaluated,
            want.build_telemetry().candidates_evaluated);
  EXPECT_EQ(got.build_telemetry().suff_stats_peak,
            want.build_telemetry().suff_stats_peak);
  EXPECT_EQ(got.build_telemetry().levels, want.build_telemetry().levels);
}

void ExpectCubesIdentical(const BellwetherCube& got,
                          const BellwetherCube& want) {
  ASSERT_EQ(got.cells().size(), want.cells().size());
  for (size_t i = 0; i < want.cells().size(); ++i) {
    const CubeCell& a = got.cells()[i];
    const CubeCell& b = want.cells()[i];
    EXPECT_EQ(a.subset, b.subset) << "cell " << i;
    EXPECT_EQ(a.subset_size, b.subset_size) << "cell " << i;
    EXPECT_EQ(a.has_model, b.has_model) << "cell " << i;
    EXPECT_EQ(a.region, b.region) << "cell " << i;
    EXPECT_EQ(a.error, b.error) << "cell " << i;
    EXPECT_EQ(a.model.beta(), b.model.beta()) << "cell " << i;
    EXPECT_EQ(a.degradation, b.degradation) << "cell " << i;
    EXPECT_EQ(a.fallback_pick, b.fallback_pick) << "cell " << i;
    EXPECT_EQ(a.has_cv, b.has_cv) << "cell " << i;
    if (b.has_cv) {
      EXPECT_EQ(a.cv.rmse, b.cv.rmse) << "cell " << i;
    }
  }
  EXPECT_EQ(got.build_telemetry().data_passes,
            want.build_telemetry().data_passes);
  EXPECT_EQ(got.build_telemetry().significant_subsets,
            want.build_telemetry().significant_subsets);
  EXPECT_EQ(got.build_telemetry().fallback_picks,
            want.build_telemetry().fallback_picks);
}

// ---- Basic search ----

TEST(ParallelDeterminismTest, SearchBitIdenticalAcrossThreadCounts) {
  datagen::SimulationDataset sim = MakeSim(41);
  BasicSearchOptions options;  // cross-validated errors: exercises the RNG
  storage::MemoryTrainingData serial_src(sim.sets);
  auto serial = RunBasicBellwetherSearch(&serial_src, options);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ASSERT_TRUE(serial->found());

  for (int32_t threads : kThreadCounts) {
    SCOPED_TRACE("num_threads=" + std::to_string(threads));
    BasicSearchOptions par = options;
    par.exec.num_threads = threads;
    storage::MemoryTrainingData src(sim.sets);
    auto result = RunBasicBellwetherSearch(&src, par);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ExpectSearchIdentical(*result, *serial);
    // The logical scan count is independent of the thread count.
    EXPECT_EQ(src.io_stats().sequential_scans, 1);
  }
}

// ---- RainForest tree ----

TEST(ParallelDeterminismTest, TreeBitIdenticalAcrossThreadCounts) {
  datagen::SimulationDataset sim = MakeSim(43);
  TreeBuildConfig config;
  config.split_columns = sim.feature_columns;
  config.min_items = 25;
  config.max_depth = 4;
  config.min_examples_per_model = 8;

  storage::MemoryTrainingData serial_src(sim.sets);
  auto serial = BuildBellwetherTreeRainForest(&serial_src, sim.items, config);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ASSERT_GT(serial->nodes().size(), 1u) << "want a tree that actually splits";

  for (int32_t threads : kThreadCounts) {
    SCOPED_TRACE("num_threads=" + std::to_string(threads));
    TreeBuildConfig par = config;
    par.exec.num_threads = threads;
    storage::MemoryTrainingData src(sim.sets);
    auto tree = BuildBellwetherTreeRainForest(&src, sim.items, par);
    ASSERT_TRUE(tree.ok()) << tree.status().ToString();
    ExpectTreesIdentical(*tree, *serial);
    // Lemma 1 telemetry: one scan per level, regardless of thread count.
    EXPECT_EQ(src.io_stats().sequential_scans,
              tree->build_telemetry().data_passes);
  }
}

// ---- Single-scan cube ----

TEST(ParallelDeterminismTest, CubeBitIdenticalAcrossThreadCounts) {
  datagen::SimulationDataset sim = MakeSim(45);
  auto subsets = ItemSubsetSpace::Create(sim.items, sim.item_hierarchies);
  ASSERT_TRUE(subsets.ok());
  CubeBuildConfig config;
  config.min_subset_size = 20;
  config.min_examples_per_model = 8;

  storage::MemoryTrainingData serial_src(sim.sets);
  auto serial = BuildBellwetherCubeSingleScan(&serial_src, *subsets, config);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ASSERT_FALSE(serial->cells().empty());

  for (int32_t threads : kThreadCounts) {
    SCOPED_TRACE("num_threads=" + std::to_string(threads));
    CubeBuildConfig par = config;
    par.exec.num_threads = threads;
    storage::MemoryTrainingData src(sim.sets);
    auto cube = BuildBellwetherCubeSingleScan(&src, *subsets, par);
    ASSERT_TRUE(cube.ok()) << cube.status().ToString();
    ExpectCubesIdentical(*cube, *serial);
    // Lemma 2 telemetry: exactly one scan, regardless of thread count.
    EXPECT_EQ(cube->build_telemetry().data_passes, 1);
  }
}

// ---- Determinism with faults armed ----

TEST(ParallelDeterminismTest, SearchIdenticalUnderFaultsAcrossThreadCounts) {
  datagen::SimulationDataset sim = MakeSim(47);
  BasicSearchOptions options;
  options.estimate = regression::ErrorEstimate::kTrainingSet;
  storage::MemoryTrainingData clean_src(sim.sets);
  auto clean = RunBasicBellwetherSearch(&clean_src, options);
  ASSERT_TRUE(clean.ok());

  for (int32_t threads : kThreadCounts) {
    SCOPED_TRACE("num_threads=" + std::to_string(threads));
    BasicSearchOptions par = options;
    par.exec.num_threads = threads;
    storage::MemoryTrainingData inner(sim.sets);
    storage::RetryPolicy policy;
    policy.sleep_fn = [](int64_t) {};
    storage::RetryingTrainingDataSource source(&inner, policy);
    // Fault triggers fire on logical arrival counts at the scan, which
    // stays on one thread — so the same faults fire at the same points for
    // every thread count.
    ScopedFaults faults("storage.scan:io@3");
    auto result = RunBasicBellwetherSearch(&source, par);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ExpectSearchIdentical(*result, *clean);
    EXPECT_EQ(source.retry_stats().retries, 3);
  }
}

TEST(ParallelDeterminismTest, CubeCrashAndResumeAcrossThreadCounts) {
  datagen::SimulationDataset sim = MakeSim(49);
  auto subsets = ItemSubsetSpace::Create(sim.items, sim.item_hierarchies);
  ASSERT_TRUE(subsets.ok());
  CubeBuildConfig base;
  base.min_subset_size = 20;
  base.min_examples_per_model = 8;
  base.compute_cv_stats = false;

  storage::MemoryTrainingData ref_src(sim.sets);
  auto ref = BuildBellwetherCubeSingleScan(&ref_src, *subsets, base);
  ASSERT_TRUE(ref.ok());

  for (int32_t crash_threads : {1, 4}) {
    for (int32_t resume_threads : {1, 4}) {
      SCOPED_TRACE("crash_threads=" + std::to_string(crash_threads) +
                   " resume_threads=" + std::to_string(resume_threads));
      CubeBuildConfig ckpt = base;
      ckpt.checkpoint_path = ::testing::TempDir() + "/par_cube_resume_" +
                             std::to_string(crash_threads) + "_" +
                             std::to_string(resume_threads) + ".bwk";
      ckpt.checkpoint_every = 1;
      {
        // Kill the build right after the first merged region's checkpoint.
        // Crash arrival counts follow the merge order, so the checkpoint on
        // disk is the same whatever thread count wrote it.
        ScopedFaults faults("cube.scan:crash@1");
        CubeBuildConfig crash_config = ckpt;
        crash_config.exec.num_threads = crash_threads;
        storage::MemoryTrainingData src(sim.sets);
        auto crashed =
            BuildBellwetherCubeSingleScan(&src, *subsets, crash_config);
        ASSERT_FALSE(crashed.ok());
        EXPECT_EQ(crashed.status().code(), StatusCode::kIoError);
      }
      CubeBuildConfig resume_config = ckpt;
      resume_config.exec.num_threads = resume_threads;
      storage::MemoryTrainingData src(sim.sets);
      auto resumed =
          BuildBellwetherCubeSingleScan(&src, *subsets, resume_config);
      ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
      EXPECT_EQ(resumed->build_telemetry().resumed_regions, 1);
      ExpectCubesIdentical(*resumed, *ref);
      std::remove(ckpt.checkpoint_path.c_str());
    }
  }
}

}  // namespace
}  // namespace bellwether::core
