#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/random.h"
#include "olap/cost.h"
#include "olap/cube.h"
#include "olap/dimension.h"
#include "olap/iceberg.h"
#include "olap/region.h"

namespace bellwether::olap {
namespace {

// All -> US {WI, MD}, KR.
HierarchicalDimension MakeLocation() {
  HierarchicalDimension dim("Location", "All");
  const NodeId us = dim.AddNode("US", dim.root());
  dim.AddNode("WI", us);
  dim.AddNode("MD", us);
  dim.AddNode("KR", dim.root());
  return dim;
}

RegionSpace MakeSpace(int32_t weeks = 4,
                      WindowKind kind = WindowKind::kIncremental) {
  std::vector<Dimension> dims;
  dims.emplace_back(IntervalDimension("Time", weeks, kind));
  dims.emplace_back(MakeLocation());
  return RegionSpace(std::move(dims));
}

TEST(HierarchyTest, StructureQueries) {
  HierarchicalDimension dim = MakeLocation();
  EXPECT_EQ(dim.num_nodes(), 5);
  const NodeId us = *dim.FindNode("US");
  const NodeId wi = *dim.FindNode("WI");
  const NodeId kr = *dim.FindNode("KR");
  EXPECT_EQ(dim.parent(wi), us);
  EXPECT_EQ(dim.depth(wi), 2);
  EXPECT_TRUE(dim.IsLeaf(wi));
  EXPECT_FALSE(dim.IsLeaf(us));
  EXPECT_TRUE(dim.Contains(us, wi));
  EXPECT_TRUE(dim.Contains(dim.root(), kr));
  EXPECT_FALSE(dim.Contains(us, kr));
  EXPECT_EQ(dim.leaves().size(), 3u);
  EXPECT_EQ(dim.LeavesUnder(us).size(), 2u);
  EXPECT_EQ(dim.max_depth(), 2);
}

TEST(HierarchyTest, AncestorsChain) {
  HierarchicalDimension dim = MakeLocation();
  const NodeId wi = *dim.FindNode("WI");
  const auto anc = dim.AncestorsOf(wi);
  ASSERT_EQ(anc.size(), 3u);
  EXPECT_EQ(anc[0], wi);
  EXPECT_EQ(anc[2], dim.root());
}

TEST(HierarchyTest, BottomUpOrderChildrenBeforeParents) {
  HierarchicalDimension dim = MakeLocation();
  const auto order = dim.NodesBottomUp();
  std::vector<int32_t> pos(dim.num_nodes());
  for (size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (NodeId n = 1; n < dim.num_nodes(); ++n) {
    EXPECT_LT(pos[n], pos[dim.parent(n)]) << "node " << n;
  }
}

TEST(HierarchyTest, FindNodeMissing) {
  EXPECT_FALSE(MakeLocation().FindNode("XX").ok());
}

TEST(IntervalTest, WindowContainment) {
  IntervalDimension iv("Time", 10);
  EXPECT_TRUE(iv.Contains(5, 1));
  EXPECT_TRUE(iv.Contains(5, 5));
  EXPECT_FALSE(iv.Contains(5, 6));
  EXPECT_FALSE(iv.Contains(5, 0));
  EXPECT_EQ(iv.WindowLabelById(2), "[1-3]");
  EXPECT_TRUE(iv.ContainsWindow(4, 3));   // [1-5] contains t=3
  EXPECT_FALSE(iv.ContainsWindow(4, 6));
  EXPECT_EQ(iv.FindWindow(1, 4), 3);
  EXPECT_EQ(iv.FindWindow(2, 4), -1);  // not an incremental window
  EXPECT_TRUE(iv.WindowContainsWindow(5, 3));
  EXPECT_FALSE(iv.WindowContainsWindow(3, 5));
}

TEST(IntervalTest, SlidingWindowEnumeration) {
  IntervalDimension iv("Time", 4, WindowKind::kSliding);
  EXPECT_EQ(iv.num_windows(), 10);  // 4 + 3 + 2 + 1
  // Ids 0..3 are the base windows [t..t].
  for (int32_t t = 1; t <= 4; ++t) {
    EXPECT_EQ(iv.WindowBounds(t - 1), std::make_pair(t, t));
  }
  // Last id is the full window.
  EXPECT_EQ(iv.WindowBounds(9), std::make_pair(1, 4));
  // Round trip every window.
  for (int32_t w = 0; w < iv.num_windows(); ++w) {
    const auto [s, e] = iv.WindowBounds(w);
    EXPECT_EQ(iv.FindWindow(s, e), w) << "[" << s << "," << e << "]";
    EXPECT_EQ(iv.WindowLabelById(w),
              "[" + std::to_string(s) + "-" + std::to_string(e) + "]");
  }
  EXPECT_TRUE(iv.ContainsWindow(iv.FindWindow(2, 3), 2));
  EXPECT_FALSE(iv.ContainsWindow(iv.FindWindow(2, 3), 4));
  EXPECT_TRUE(
      iv.WindowContainsWindow(iv.FindWindow(1, 3), iv.FindWindow(2, 3)));
  EXPECT_FALSE(
      iv.WindowContainsWindow(iv.FindWindow(2, 3), iv.FindWindow(1, 2)));
  EXPECT_FALSE(iv.CostMonotoneByIndex());
}

TEST(IntervalTest, SlidingRollupScheduleCoversEveryWindowOnce) {
  IntervalDimension iv("Time", 5, WindowKind::kSliding);
  // Simulate the rollup on integer sets: base cells hold their single time
  // point; after the merges, window w must hold exactly its bounds.
  std::vector<std::set<int32_t>> cells(iv.num_windows());
  for (int32_t t = 1; t <= 5; ++t) cells[t - 1].insert(t);
  for (const auto& [from, to] : iv.RollupMerges()) {
    cells[to].insert(cells[from].begin(), cells[from].end());
  }
  for (int32_t w = 0; w < iv.num_windows(); ++w) {
    const auto [s, e] = iv.WindowBounds(w);
    std::set<int32_t> expected;
    for (int32_t t = s; t <= e; ++t) expected.insert(t);
    EXPECT_EQ(cells[w], expected) << iv.WindowLabelById(w);
  }
}

TEST(RegionSpaceTest, CountsAndRoundTrip) {
  RegionSpace space = MakeSpace(4);
  EXPECT_EQ(space.NumRegions(), 4 * 5);
  EXPECT_EQ(space.NumFinestCells(), 4 * 3);
  for (RegionId r = 0; r < space.NumRegions(); ++r) {
    EXPECT_EQ(space.Encode(space.Decode(r)), r);
  }
}

TEST(RegionSpaceTest, LabelsAndLookup) {
  RegionSpace space = MakeSpace(4);
  auto r = space.FindRegion({"1-3", "WI"});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(space.RegionLabel(*r), "[1-3, WI]");
  EXPECT_FALSE(space.FindRegion({"1-9", "WI"}).ok());
  EXPECT_FALSE(space.FindRegion({"1-3", "XX"}).ok());
}

TEST(RegionSpaceTest, PointContainment) {
  RegionSpace space = MakeSpace(4);
  const auto& loc = std::get<HierarchicalDimension>(space.dim(1));
  const NodeId wi = *loc.FindNode("WI");
  const NodeId kr = *loc.FindNode("KR");
  const RegionId r = *space.FindRegion({"1-2", "US"});
  EXPECT_TRUE(space.RegionContainsPoint(r, {1, wi}));
  EXPECT_TRUE(space.RegionContainsPoint(r, {2, wi}));
  EXPECT_FALSE(space.RegionContainsPoint(r, {3, wi}));  // outside window
  EXPECT_FALSE(space.RegionContainsPoint(r, {1, kr}));  // outside subtree
}

TEST(RegionSpaceTest, RegionContainsRegion) {
  RegionSpace space = MakeSpace(4);
  const RegionId big = *space.FindRegion({"1-4", "All"});
  const RegionId mid = *space.FindRegion({"1-2", "US"});
  const RegionId small = *space.FindRegion({"1-1", "WI"});
  EXPECT_TRUE(space.RegionContainsRegion(big, mid));
  EXPECT_TRUE(space.RegionContainsRegion(mid, small));
  EXPECT_TRUE(space.RegionContainsRegion(big, small));
  EXPECT_FALSE(space.RegionContainsRegion(small, mid));
  EXPECT_EQ(space.FullRegion(), big);
}

TEST(RegionSpaceTest, ContainingRegionsMatchBruteForce) {
  RegionSpace space = MakeSpace(4);
  const auto& loc = std::get<HierarchicalDimension>(space.dim(1));
  for (NodeId leaf : loc.leaves()) {
    for (int32_t t = 1; t <= 4; ++t) {
      const PointCoords point{t, leaf};
      std::set<RegionId> fast;
      space.ForEachContainingRegion(point,
                                    [&](RegionId r) { fast.insert(r); });
      std::set<RegionId> slow;
      for (RegionId r = 0; r < space.NumRegions(); ++r) {
        if (space.RegionContainsPoint(r, point)) slow.insert(r);
      }
      EXPECT_EQ(fast, slow) << "t=" << t << " leaf=" << leaf;
    }
  }
}

TEST(RegionSpaceTest, FinestCellsPartitionTheFullRegion) {
  RegionSpace space = MakeSpace(4);
  const auto cells = space.FinestCellsIn(space.FullRegion());
  EXPECT_EQ(static_cast<int64_t>(cells.size()), space.NumFinestCells());
  std::set<int64_t> unique(cells.begin(), cells.end());
  EXPECT_EQ(unique.size(), cells.size());
}

TEST(RegionSpaceTest, FinestCellsOfSubRegion) {
  RegionSpace space = MakeSpace(4);
  const RegionId r = *space.FindRegion({"1-2", "US"});
  // 2 time points x 2 states.
  EXPECT_EQ(space.FinestCellsIn(r).size(), 4u);
}

TEST(NumericAggTest, MergeMatchesSequential) {
  NumericAgg a, b, all;
  for (double v : {1.0, 5.0, -2.0}) {
    a.Add(v);
    all.Add(v);
  }
  for (double v : {7.0, 0.5}) {
    b.Add(v);
    all.Add(v);
  }
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.sum, all.sum);
  EXPECT_EQ(a.count, all.count);
  EXPECT_DOUBLE_EQ(a.min, all.min);
  EXPECT_DOUBLE_EQ(a.max, all.max);
  EXPECT_DOUBLE_EQ(*a.Finish(table::AggFn::kAvg), all.sum / 5.0);
}

TEST(NumericAggTest, EmptyFinish) {
  NumericAgg a;
  EXPECT_FALSE(a.Finish(table::AggFn::kSum).has_value());
  EXPECT_DOUBLE_EQ(*a.Finish(table::AggFn::kCount), 0.0);
}

TEST(FkSetAggTest, UnionSemantics) {
  FkSetAgg a, b;
  a.Add(1);
  a.Add(2);
  b.Add(2);
  b.Add(3);
  a.Merge(b);
  EXPECT_EQ(a.keys.size(), 3u);
}

TEST(ItemDictionaryTest, DenseIndices) {
  ItemDictionary dict;
  EXPECT_EQ(dict.GetOrAdd(100), 0);
  EXPECT_EQ(dict.GetOrAdd(200), 1);
  EXPECT_EQ(dict.GetOrAdd(100), 0);
  EXPECT_EQ(dict.Find(200), 1);
  EXPECT_EQ(dict.Find(999), -1);
  EXPECT_EQ(dict.IdAt(1), 200);
  EXPECT_EQ(dict.size(), 2);
}

// Property: cube rollup equals brute-force scatter for random fact data.
TEST(RegionItemCubeTest, RollupMatchesBruteForceScatter) {
  RegionSpace space = MakeSpace(4);
  const auto& loc = std::get<HierarchicalDimension>(space.dim(1));
  const auto& leaves = loc.leaves();
  const int32_t num_items = 7;
  Rng rng(3);

  RegionItemCube<NumericAgg> cube(&space, num_items);
  std::vector<NumericAgg> brute(space.NumRegions() * num_items);
  for (int row = 0; row < 500; ++row) {
    const PointCoords point{
        static_cast<int32_t>(1 + rng.NextUint64(4)),
        leaves[rng.NextUint64(leaves.size())]};
    const int32_t item = static_cast<int32_t>(rng.NextUint64(num_items));
    const double v = rng.NextDouble(-10, 10);
    cube.BaseCell(point, item).Add(v);
    space.ForEachContainingRegion(point, [&](RegionId r) {
      brute[r * num_items + item].Add(v);
    });
  }
  cube.Rollup();
  for (RegionId r = 0; r < space.NumRegions(); ++r) {
    for (int32_t i = 0; i < num_items; ++i) {
      const NumericAgg& fast = cube.Cell(r, i);
      const NumericAgg& slow = brute[r * num_items + i];
      EXPECT_EQ(fast.count, slow.count);
      EXPECT_NEAR(fast.sum, slow.sum, 1e-9);
      if (slow.count > 0) {
        EXPECT_DOUBLE_EQ(fast.min, slow.min);
        EXPECT_DOUBLE_EQ(fast.max, slow.max);
      }
    }
  }
}

TEST(SlidingRegionSpaceTest, CountsLabelsAndContainment) {
  RegionSpace space = MakeSpace(4, WindowKind::kSliding);
  EXPECT_EQ(space.NumRegions(), 10 * 5);
  EXPECT_EQ(space.NumFinestCells(), 4 * 3);  // finest cells unchanged
  auto r = space.FindRegion({"2-3", "WI"});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(space.RegionLabel(*r), "[2-3, WI]");
  const auto& loc = std::get<HierarchicalDimension>(space.dim(1));
  const NodeId wi = *loc.FindNode("WI");
  EXPECT_TRUE(space.RegionContainsPoint(*r, {2, wi}));
  EXPECT_FALSE(space.RegionContainsPoint(*r, {1, wi}));
  EXPECT_FALSE(space.RegionContainsPoint(*r, {4, wi}));
  const RegionId full = *space.FindRegion({"1-4", "All"});
  EXPECT_EQ(space.FullRegion(), full);
  EXPECT_TRUE(space.RegionContainsRegion(full, *r));
  EXPECT_FALSE(space.RegionContainsRegion(*r, full));
  // Finest cells of [2-3, US]: 2 time points x 2 states.
  EXPECT_EQ(space.FinestCellsIn(*space.FindRegion({"2-3", "US"})).size(), 4u);
}

TEST(SlidingRegionSpaceTest, ContainingRegionsMatchBruteForce) {
  RegionSpace space = MakeSpace(4, WindowKind::kSliding);
  const auto& loc = std::get<HierarchicalDimension>(space.dim(1));
  for (NodeId leaf : loc.leaves()) {
    for (int32_t t = 1; t <= 4; ++t) {
      const PointCoords point{t, leaf};
      std::set<RegionId> fast;
      space.ForEachContainingRegion(point,
                                    [&](RegionId r) { fast.insert(r); });
      std::set<RegionId> slow;
      for (RegionId r = 0; r < space.NumRegions(); ++r) {
        if (space.RegionContainsPoint(r, point)) slow.insert(r);
      }
      EXPECT_EQ(fast, slow) << "t=" << t << " leaf=" << leaf;
    }
  }
}

TEST(SlidingRegionSpaceTest, CubeRollupMatchesBruteForce) {
  RegionSpace space = MakeSpace(4, WindowKind::kSliding);
  const auto& loc = std::get<HierarchicalDimension>(space.dim(1));
  const auto& leaves = loc.leaves();
  const int32_t num_items = 5;
  Rng rng(9);
  RegionItemCube<NumericAgg> cube(&space, num_items);
  std::vector<NumericAgg> brute(space.NumRegions() * num_items);
  for (int row = 0; row < 300; ++row) {
    const PointCoords point{static_cast<int32_t>(1 + rng.NextUint64(4)),
                            leaves[rng.NextUint64(leaves.size())]};
    const int32_t item = static_cast<int32_t>(rng.NextUint64(num_items));
    const double v = rng.NextDouble(-10, 10);
    cube.BaseCell(point, item).Add(v);
    space.ForEachContainingRegion(point, [&](RegionId r) {
      brute[r * num_items + item].Add(v);
    });
  }
  cube.Rollup();
  for (RegionId r = 0; r < space.NumRegions(); ++r) {
    for (int32_t i = 0; i < num_items; ++i) {
      EXPECT_EQ(cube.Cell(r, i).count, brute[r * num_items + i].count)
          << space.RegionLabel(r);
      EXPECT_NEAR(cube.Cell(r, i).sum, brute[r * num_items + i].sum, 1e-9);
    }
  }
}

TEST(SlidingRegionSpaceTest, CostModelAndIcebergStillExact) {
  Rng rng(21);
  RegionSpace space = MakeSpace(4, WindowKind::kSliding);
  std::vector<double> cell_costs(space.NumFinestCells());
  for (auto& c : cell_costs) c = rng.NextDouble(0.0, 3.0);
  auto cost = CostModel::Create(&space, cell_costs);
  ASSERT_TRUE(cost.ok());
  for (RegionId r = 0; r < space.NumRegions(); ++r) {
    double expected = 0.0;
    for (int64_t c : space.FinestCellsIn(r)) expected += cell_costs[c];
    EXPECT_NEAR(cost->RegionCost(r), expected, 1e-9) << space.RegionLabel(r);
  }
  std::vector<double> coverage(space.NumRegions());
  for (RegionId r = 0; r < space.NumRegions(); ++r) {
    coverage[r] = std::min(
        1.0, static_cast<double>(space.FinestCellsIn(r).size()) / 6.0);
  }
  const auto brute = FindFeasibleRegionsBruteForce(
      space, cost->region_costs(), coverage, 4.0, 0.3);
  const auto pruned = FindFeasibleRegionsPruned(
      space, cost->region_costs(), coverage, 4.0, 0.3);
  EXPECT_EQ(brute.regions, pruned.regions);
}

TEST(RegionItemCubeTest, FkSetRollupIsExactUnderOverlap) {
  RegionSpace space = MakeSpace(2);
  const auto& loc = std::get<HierarchicalDimension>(space.dim(1));
  const NodeId wi = *loc.FindNode("WI");
  const NodeId md = *loc.FindNode("MD");
  RegionItemCube<FkSetAgg> cube(&space, 1);
  // The same FK appears in two different states: the US rollup must count
  // it once.
  cube.BaseCell({1, wi}, 0).Add(42);
  cube.BaseCell({1, md}, 0).Add(42);
  cube.BaseCell({2, md}, 0).Add(43);
  cube.Rollup();
  const RegionId us1 = *space.FindRegion({"1-1", "US"});
  const RegionId us2 = *space.FindRegion({"1-2", "US"});
  EXPECT_EQ(cube.Cell(us1, 0).keys.size(), 1u);
  EXPECT_EQ(cube.Cell(us2, 0).keys.size(), 2u);
}

TEST(CostModelTest, RegionCostIsSumOfFinestCells) {
  RegionSpace space = MakeSpace(3);
  std::vector<double> cell_costs(space.NumFinestCells());
  for (size_t i = 0; i < cell_costs.size(); ++i) cell_costs[i] = 1.0 + i;
  auto cost = CostModel::Create(&space, cell_costs);
  ASSERT_TRUE(cost.ok());
  for (RegionId r = 0; r < space.NumRegions(); ++r) {
    double expected = 0.0;
    for (int64_t c : space.FinestCellsIn(r)) expected += cell_costs[c];
    EXPECT_NEAR(cost->RegionCost(r), expected, 1e-9) << "region " << r;
  }
}

TEST(CostModelTest, RejectsWrongArityAndNegative) {
  RegionSpace space = MakeSpace(2);
  EXPECT_FALSE(CostModel::Create(&space, {1.0}).ok());
  std::vector<double> neg(space.NumFinestCells(), 1.0);
  neg[0] = -1.0;
  EXPECT_FALSE(CostModel::Create(&space, neg).ok());
}

// Property: the pruned iceberg search returns exactly the brute-force
// feasible set, over random monotone cost/coverage configurations.
class IcebergPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(IcebergPropertyTest, PrunedMatchesBruteForce) {
  Rng rng(GetParam());
  RegionSpace space = MakeSpace(4);
  // Random per-cell costs; region costs are their rollup (monotone).
  std::vector<double> cell_costs(space.NumFinestCells());
  for (auto& c : cell_costs) c = rng.NextDouble(0.0, 3.0);
  auto cost = CostModel::Create(&space, cell_costs);
  ASSERT_TRUE(cost.ok());
  // Random coverage from a synthetic item scatter (anti-monotone by
  // construction: coverage of a subregion cannot exceed its superregion's).
  const auto& loc = std::get<HierarchicalDimension>(space.dim(1));
  const auto& leaves = loc.leaves();
  const int32_t num_items = 10;
  RegionItemCube<NumericAgg> counts(&space, num_items);
  for (int k = 0; k < 60; ++k) {
    const PointCoords p{static_cast<int32_t>(1 + rng.NextUint64(4)),
                        leaves[rng.NextUint64(leaves.size())]};
    counts.BaseCell(p, static_cast<int32_t>(rng.NextUint64(num_items)))
        .Add(1.0);
  }
  counts.Rollup();
  std::vector<double> coverage(space.NumRegions());
  for (RegionId r = 0; r < space.NumRegions(); ++r) {
    int32_t covered = 0;
    for (int32_t i = 0; i < num_items; ++i) {
      if (counts.Cell(r, i).count > 0) ++covered;
    }
    coverage[r] = static_cast<double>(covered) / num_items;
  }
  const double budget = rng.NextDouble(1.0, 20.0);
  const double min_cov = rng.NextDouble(0.0, 0.9);
  const auto brute = FindFeasibleRegionsBruteForce(
      space, cost->region_costs(), coverage, budget, min_cov);
  const auto pruned = FindFeasibleRegionsPruned(
      space, cost->region_costs(), coverage, budget, min_cov);
  EXPECT_EQ(brute.regions, pruned.regions);
  EXPECT_LE(pruned.regions_examined, brute.regions_examined);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IcebergPropertyTest,
                         ::testing::Range(1, 13));

TEST(IcebergTest, TightConstraintsPruneSomething) {
  RegionSpace space = MakeSpace(4);
  std::vector<double> costs(space.NumRegions(), 100.0);
  std::vector<double> coverage(space.NumRegions(), 0.0);
  const auto pruned =
      FindFeasibleRegionsPruned(space, costs, coverage, 1.0, 0.5);
  EXPECT_TRUE(pruned.regions.empty());
  EXPECT_GT(pruned.regions_pruned, 0);
}

}  // namespace
}  // namespace bellwether::olap
