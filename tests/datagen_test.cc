#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <set>

#include "datagen/book_store.h"
#include "datagen/hierarchy_util.h"
#include "datagen/mail_order.h"
#include "datagen/scalability.h"
#include "datagen/simulation.h"

namespace bellwether::datagen {
namespace {

TEST(HierarchyUtilTest, BalancedHierarchyShape) {
  auto dim = BuildBalancedHierarchy("D", "Root", {3, 2}, "X");
  // 1 root + 3 + 6.
  EXPECT_EQ(dim.num_nodes(), 10);
  EXPECT_EQ(dim.leaves().size(), 6u);
  EXPECT_EQ(dim.max_depth(), 2);
}

TEST(HierarchyUtilTest, UsCensusHierarchy) {
  auto dim = BuildUsCensusLocationHierarchy();
  EXPECT_EQ(dim.leaves().size(), 50u);  // 50 states
  ASSERT_TRUE(dim.FindNode("MD").ok());
  ASSERT_TRUE(dim.FindNode("WI").ok());
  const auto md = *dim.FindNode("MD");
  EXPECT_EQ(dim.label(dim.parent(md)), "SouthAtlantic");
  EXPECT_EQ(dim.depth(md), 3);
}

TEST(MailOrderTest, DeterministicForFixedSeed) {
  MailOrderConfig config;
  config.num_items = 20;
  config.density = 0.4;
  MailOrderDataset a = GenerateMailOrder(config);
  MailOrderDataset b = GenerateMailOrder(config);
  EXPECT_EQ(a.fact.num_rows(), b.fact.num_rows());
  ASSERT_GT(a.fact.num_rows(), 0u);
  EXPECT_DOUBLE_EQ(a.fact.ColumnByName("Profit").DoubleAt(0),
                   b.fact.ColumnByName("Profit").DoubleAt(0));
  EXPECT_EQ(a.planted_region, b.planted_region);
}

TEST(MailOrderTest, SchemaAndShapes) {
  MailOrderConfig config;
  config.num_items = 25;
  config.density = 0.4;
  MailOrderDataset d = GenerateMailOrder(config);
  EXPECT_EQ(d.items.num_rows(), 25u);
  EXPECT_EQ(d.catalogs.num_rows(), 40u);
  EXPECT_EQ(d.space->num_dims(), 2u);
  EXPECT_EQ(d.space->NumRegions(), 10 * 64);  // 10 windows x 64 nodes
  // The planted region decodes to the planted state at 8 months.
  const auto coords = d.space->Decode(d.planted_region);
  EXPECT_EQ(coords[0], 7);  // window [1-8]
  EXPECT_EQ(coords[1], d.planted_state_node);
  // Spec assembles and references resolve.
  auto spec = d.MakeSpec(50.0, 0.1);
  EXPECT_EQ(spec.regional_features.size(), 4u);
  EXPECT_EQ(spec.references.count("catalogs"), 1u);
}

TEST(MailOrderTest, ItemHierarchyLabelsMatchItemColumns) {
  MailOrderConfig config;
  config.num_items = 30;
  config.density = 0.3;
  MailOrderDataset d = GenerateMailOrder(config);
  for (const auto& ih : d.item_hierarchies) {
    const auto& col = d.items.ColumnByName(ih.column);
    for (size_t r = 0; r < d.items.num_rows(); ++r) {
      auto node = ih.dim.FindNode(col.StringAt(r));
      ASSERT_TRUE(node.ok()) << col.StringAt(r);
      EXPECT_TRUE(ih.dim.IsLeaf(*node));
    }
  }
}

TEST(BookStoreTest, ShapesAndDeterminism) {
  BookStoreConfig config;
  config.num_books = 40;
  BookStoreDataset a = GenerateBookStore(config);
  BookStoreDataset b = GenerateBookStore(config);
  EXPECT_EQ(a.fact.num_rows(), b.fact.num_rows());
  EXPECT_EQ(a.items.num_rows(), 40u);
  // 12 windows x (1 + 5 states + 20 cities) nodes.
  EXPECT_EQ(a.space->NumRegions(), 12 * 26);
  auto spec = a.MakeSpec(100.0, 0.1);
  EXPECT_EQ(spec.regional_features.size(), 2u);
}

TEST(SimulationTest, ShapesAndGroundTruth) {
  SimulationConfig config;
  config.num_items = 50;
  config.generator_tree_nodes = 7;
  config.num_windows = 3;
  config.location_fanouts = {2};
  SimulationDataset d = GenerateSimulation(config);
  EXPECT_EQ(d.targets.size(), 50u);
  EXPECT_EQ(d.space->NumRegions(), 3 * 3);  // 3 windows x (root + 2 leaves)
  EXPECT_EQ(d.sets.size(), 9u);
  EXPECT_EQ(d.feature_columns.size(), 8u);
  EXPECT_EQ(d.item_hierarchies.size(), 3u);
  for (auto r : d.true_region_of_item) {
    EXPECT_GE(r, 0);
    EXPECT_LT(r, d.space->NumRegions());
  }
  // Every region's training set covers all items with an intercept column.
  for (const auto& set : d.sets) {
    EXPECT_EQ(set.num_examples(), 50u);
    EXPECT_EQ(set.num_features, 5);
    EXPECT_DOUBLE_EQ(set.row(0)[0], 1.0);
  }
}

TEST(SimulationTest, NoiseKnobControlsResidualVariance) {
  SimulationConfig quiet;
  quiet.num_items = 400;
  quiet.noise = 0.05;
  quiet.seed = 5;
  SimulationConfig loud = quiet;
  loud.noise = 2.0;
  SimulationDataset dq = GenerateSimulation(quiet);
  SimulationDataset dl = GenerateSimulation(loud);
  // Identical structure (same seed drives the same draws), so comparing the
  // dispersion of targets around their means is meaningful.
  auto variance = [](const std::vector<double>& v) {
    double mean = 0.0;
    for (double x : v) mean += x;
    mean /= v.size();
    double var = 0.0;
    for (double x : v) var += (x - mean) * (x - mean);
    return var / v.size();
  };
  EXPECT_GT(variance(dl.targets), variance(dq.targets) * 0.9);
}

TEST(SimulationTest, TreeSizeControlsDistinctPlantedRegions) {
  SimulationConfig small;
  small.num_items = 200;
  small.generator_tree_nodes = 3;
  small.seed = 9;
  SimulationConfig big = small;
  big.generator_tree_nodes = 31;
  SimulationDataset ds = GenerateSimulation(small);
  SimulationDataset db = GenerateSimulation(big);
  std::set<olap::RegionId> rs(ds.true_region_of_item.begin(),
                              ds.true_region_of_item.end());
  std::set<olap::RegionId> rb(db.true_region_of_item.begin(),
                              db.true_region_of_item.end());
  EXPECT_LE(rs.size(), 2u);  // a 3-node tree has 2 leaves
  EXPECT_GT(rb.size(), rs.size());
}

TEST(ScalabilityTest, MemoryGeneration) {
  ScalabilityConfig config;
  config.num_items = 100;
  config.dim1_fanouts = {2};
  config.dim2_fanouts = {2};
  storage::MemorySink sink;
  auto d = GenerateScalability(config, &sink);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_EQ(d->num_regions, 9);  // (1+2) * (1+2)
  EXPECT_EQ(sink.sets_appended(), 9);
  EXPECT_EQ(d->total_examples, 900);
  EXPECT_EQ(d->items.num_rows(), 100u);
  EXPECT_EQ(d->numeric_feature_columns.size(), 4u);
  EXPECT_EQ(d->item_hierarchies.size(), 3u);
}

TEST(ScalabilityTest, SpillGenerationMatchesMemory) {
  ScalabilityConfig config;
  config.num_items = 50;
  config.dim1_fanouts = {2};
  config.dim2_fanouts = {2};
  storage::MemorySink mem_sink;
  ASSERT_TRUE(GenerateScalability(config, &mem_sink).ok());
  auto mem_src = mem_sink.Finish();
  ASSERT_TRUE(mem_src.ok());
  const std::string path = ::testing::TempDir() + "/scal_spill.bin";
  auto spill_sink = storage::SpillSink::Create(path);
  ASSERT_TRUE(spill_sink.ok());
  ASSERT_TRUE(GenerateScalability(config, spill_sink->get()).ok());
  auto src = (*spill_sink)->Finish();
  ASSERT_TRUE(src.ok());
  ASSERT_EQ((*src)->num_region_sets(), (*mem_src)->num_region_sets());
  for (size_t i = 0; i < (*mem_src)->num_region_sets(); ++i) {
    auto s = (*src)->Read(i);
    auto m = (*mem_src)->Read(i);
    ASSERT_TRUE(s.ok());
    ASSERT_TRUE(m.ok());
    EXPECT_EQ(s->region, m->region);
    EXPECT_EQ(s->features, m->features);
    EXPECT_EQ(s->targets, m->targets);
  }
  std::remove(path.c_str());
}

TEST(ScalabilityTest, RejectsNullSink) {
  ScalabilityConfig config;
  EXPECT_FALSE(GenerateScalability(config, nullptr).ok());
}

}  // namespace
}  // namespace bellwether::datagen
