#include <gtest/gtest.h>

#include <cmath>

#include "classify/error.h"
#include "classify/gaussian_nb.h"
#include "common/random.h"
#include "core/classification_search.h"
#include "core/training_data_gen.h"
#include "datagen/mail_order.h"
#include "storage/training_data.h"

namespace bellwether::classify {
namespace {

// Two well-separated Gaussian blobs in 2D.
LabeledDataset MakeBlobs(int n_per_class, double separation, uint64_t seed) {
  Rng rng(seed);
  LabeledDataset data;
  data.num_features = 2;
  for (int i = 0; i < n_per_class; ++i) {
    data.Add({rng.NextGaussian(), rng.NextGaussian()}, 0);
    data.Add({separation + rng.NextGaussian(),
              separation + rng.NextGaussian()},
             1);
  }
  return data;
}

TEST(GaussianNbTest, SeparableBlobsClassifyPerfectly) {
  const LabeledDataset data = MakeBlobs(200, 10.0, 1);
  NbSuffStats stats(2, 2);
  for (size_t i = 0; i < data.num_examples(); ++i) {
    stats.Add(data.row(i), data.y[i]);
  }
  auto model = stats.Fit();
  ASSERT_TRUE(model.ok());
  EXPECT_DOUBLE_EQ(MisclassificationRate(*model, data), 0.0);
}

TEST(GaussianNbTest, OverlappingBlobsErrAroundBayesRate) {
  // Separation 2 with unit variances: Bayes error = Phi(-sep/(2*sigma))
  // per axis combined ~ 0.078 for the 2D diagonal shift of 2.
  const LabeledDataset data = MakeBlobs(3000, 2.0, 2);
  NbSuffStats stats(2, 2);
  for (size_t i = 0; i < data.num_examples(); ++i) {
    stats.Add(data.row(i), data.y[i]);
  }
  auto model = stats.Fit();
  ASSERT_TRUE(model.ok());
  const double rate = MisclassificationRate(*model, data);
  EXPECT_GT(rate, 0.03);
  EXPECT_LT(rate, 0.13);
}

TEST(GaussianNbTest, PriorsMatter) {
  // 90/10 class balance with identical feature distributions: the model
  // should always predict the majority class.
  Rng rng(3);
  LabeledDataset data;
  data.num_features = 1;
  for (int i = 0; i < 1000; ++i) {
    data.Add({rng.NextGaussian()}, i % 10 == 0 ? 1 : 0);
  }
  NbSuffStats stats(1, 2);
  for (size_t i = 0; i < data.num_examples(); ++i) {
    stats.Add(data.row(i), data.y[i]);
  }
  auto model = stats.Fit();
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(MisclassificationRate(*model, data), 0.1, 0.02);
}

TEST(GaussianNbTest, EmptyClassGetsZeroPrior) {
  LabeledDataset data;
  data.num_features = 1;
  data.Add({0.0}, 0);
  data.Add({1.0}, 0);
  NbSuffStats stats(1, 3);  // classes 1 and 2 unseen
  for (size_t i = 0; i < data.num_examples(); ++i) {
    stats.Add(data.row(i), data.y[i]);
  }
  auto model = stats.Fit();
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->Predict(std::vector<double>{0.5}), 0);
}

TEST(GaussianNbTest, FitFailsOnEmpty) {
  NbSuffStats stats(2, 2);
  EXPECT_FALSE(stats.Fit().ok());
}

// Property: merged statistics fit the same model as monolithic ones (the
// algebraic decomposability that makes NB cube-compatible).
class NbMergeTest : public ::testing::TestWithParam<int> {};

TEST_P(NbMergeTest, MergeEqualsMonolithic) {
  Rng rng(GetParam());
  const size_t p = 1 + rng.NextUint64(4);
  const int32_t classes = 2 + static_cast<int32_t>(rng.NextUint64(3));
  NbSuffStats whole(p, classes);
  NbSuffStats parts[3] = {NbSuffStats(p, classes), NbSuffStats(p, classes),
                          NbSuffStats(p, classes)};
  std::vector<double> x(p);
  for (int i = 0; i < 300; ++i) {
    for (auto& v : x) v = rng.NextDouble(-5, 5);
    const int32_t y = static_cast<int32_t>(rng.NextUint64(classes));
    whole.Add(x.data(), y);
    parts[rng.NextUint64(3)].Add(x.data(), y);
  }
  NbSuffStats merged;
  for (auto& part : parts) merged.Merge(part);
  auto m1 = whole.Fit();
  auto m2 = merged.Fit();
  ASSERT_TRUE(m1.ok());
  ASSERT_TRUE(m2.ok());
  // Identical predictions on random probes.
  for (int i = 0; i < 50; ++i) {
    for (auto& v : x) v = rng.NextDouble(-6, 6);
    EXPECT_EQ(m1->Predict(x.data()), m2->Predict(x.data()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NbMergeTest, ::testing::Range(1, 9));

TEST(NbErrorTest, CrossValidationTracksTrainingOnEasyData) {
  const LabeledDataset data = MakeBlobs(300, 6.0, 5);
  Rng rng(1);
  auto cv = CrossValidateNb(data, 2, 10, &rng);
  auto tr = TrainingErrorNb(data, 2);
  ASSERT_TRUE(cv.ok());
  ASSERT_TRUE(tr.ok());
  EXPECT_LT(cv->rmse, 0.02);
  EXPECT_LT(tr->rmse, 0.02);
}

TEST(NbErrorTest, CvRejectsTinyInput) {
  LabeledDataset data;
  data.num_features = 1;
  data.Add({0.0}, 0);
  Rng rng(1);
  EXPECT_FALSE(CrossValidateNb(data, 2, 10, &rng).ok());
}

}  // namespace
}  // namespace bellwether::classify

namespace bellwether::core {
namespace {

TEST(ClassificationSearchTest, FindsPlantedStateForProfitabilityLabels) {
  datagen::MailOrderConfig config;
  config.num_items = 120;
  config.density = 1.0;
  config.seed = 201;
  const datagen::MailOrderDataset dataset = datagen::GenerateMailOrder(config);
  const BellwetherSpec spec = dataset.MakeSpec(60.0, 0.5);
  auto data = GenerateTrainingDataInMemory(spec);
  ASSERT_TRUE(data.ok());
  storage::TrainingDataSource& source = *data->source;

  ClassificationOptions options;
  options.labeler = ThresholdLabeler(MedianTarget(data->profile.targets));
  options.num_classes = 2;
  options.cv_folds = 5;
  options.min_examples = 40;
  auto result = RunClassificationBellwetherSearch(&source, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result->found());
  // "Will the item clear median profit?" is best answered from the planted
  // state, whose features track the total cleanly.
  EXPECT_EQ(spec.space->Decode(result->bellwether)[1],
            dataset.planted_state_node)
      << spec.space->RegionLabel(result->bellwether);
  EXPECT_LT(result->error.rmse, 0.5 * result->AverageError());
  // The refit model predicts sensibly on its own region's data.
  const int64_t idx = data->FindSet(result->bellwether);
  ASSERT_GE(idx, 0);
  const auto& set = (*data->memory_sets())[idx];
  int64_t correct = 0;
  for (size_t i = 0; i < set.num_examples(); ++i) {
    const int32_t label = options.labeler(set.targets[i]);
    if (result->model.Predict(set.row(i)) == label) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / set.num_examples(), 0.75);
}

TEST(ClassificationSearchTest, ValidatesOptions) {
  storage::MemoryTrainingData source({});
  ClassificationOptions options;
  EXPECT_FALSE(RunClassificationBellwetherSearch(&source, options).ok());
  options.labeler = ThresholdLabeler(0.0);
  options.num_classes = 1;
  EXPECT_FALSE(RunClassificationBellwetherSearch(&source, options).ok());
}

TEST(ClassificationSearchTest, MedianTargetIgnoresNaN) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_DOUBLE_EQ(MedianTarget({1.0, nan, 3.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(MedianTarget({1.0, 2.0, 3.0, 4.0}), 2.5);
}

}  // namespace
}  // namespace bellwether::core
