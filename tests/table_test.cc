#include <gtest/gtest.h>

#include <cstdio>

#include "table/csv.h"
#include "table/ops.h"
#include "table/schema.h"
#include "table/table.h"
#include "table/value.h"

namespace bellwether::table {
namespace {

Table MakeOrders() {
  Table t(Schema({{"item", DataType::kInt64},
                  {"state", DataType::kString},
                  {"profit", DataType::kDouble},
                  {"ad", DataType::kInt64}}));
  t.AppendRow({Value(int64_t{1}), Value("WI"), Value(10.0), Value(int64_t{100})});
  t.AppendRow({Value(int64_t{1}), Value("WI"), Value(20.0), Value(int64_t{101})});
  t.AppendRow({Value(int64_t{1}), Value("MD"), Value(5.0), Value(int64_t{100})});
  t.AppendRow({Value(int64_t{2}), Value("MD"), Value(7.0), Value(int64_t{102})});
  t.AppendRow({Value(int64_t{2}), Value("WI"), Value(-3.0), Value::Null()});
  return t;
}

Table MakeAds() {
  Table t(Schema({{"ad", DataType::kInt64}, {"size", DataType::kDouble}}));
  t.AppendRow({Value(int64_t{100}), Value(1.0)});
  t.AppendRow({Value(int64_t{101}), Value(4.0)});
  t.AppendRow({Value(int64_t{102}), Value(2.0)});
  return t;
}

TEST(ValueTest, TypePredicates) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_TRUE(Value(int64_t{3}).is_int64());
  EXPECT_TRUE(Value(2.5).is_double());
  EXPECT_TRUE(Value("x").is_string());
}

TEST(ValueTest, AsDoubleWidensInt) {
  EXPECT_DOUBLE_EQ(Value(int64_t{3}).AsDouble(), 3.0);
  EXPECT_DOUBLE_EQ(Value(2.5).AsDouble(), 2.5);
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Null().ToString(), "");
  EXPECT_EQ(Value(int64_t{7}).ToString(), "7");
  EXPECT_EQ(Value("hi").ToString(), "hi");
}

TEST(SchemaTest, LookupAndDuplicates) {
  Schema s({{"a", DataType::kInt64}, {"b", DataType::kDouble}});
  EXPECT_EQ(s.num_fields(), 2u);
  EXPECT_EQ(*s.FindField("b"), 1u);
  EXPECT_FALSE(s.FindField("c").has_value());
  EXPECT_EQ(s.ToString(), "a:int64, b:double");
}

TEST(TableTest, AppendAndRead) {
  Table t = MakeOrders();
  EXPECT_EQ(t.num_rows(), 5u);
  EXPECT_EQ(t.ValueAt(0, 1).str(), "WI");
  EXPECT_TRUE(t.ValueAt(4, 3).is_null());
  EXPECT_DOUBLE_EQ(t.ColumnByName("profit").DoubleAt(3), 7.0);
}

TEST(TableTest, IntWidensIntoDoubleColumn) {
  Table t(Schema({{"x", DataType::kDouble}}));
  t.AppendRow({Value(int64_t{4})});
  EXPECT_DOUBLE_EQ(t.ValueAt(0, 0).dbl(), 4.0);
}

TEST(TableTest, TakeRows) {
  Table t = MakeOrders();
  Table sub = t.TakeRows({0, 3});
  EXPECT_EQ(sub.num_rows(), 2u);
  EXPECT_EQ(sub.ValueAt(1, 0).int64(), 2);
}

TEST(OpsTest, Select) {
  Table t = MakeOrders();
  Table wi = Select(t, [](const Table& tbl, size_t r) {
    return tbl.ValueAt(r, 1).str() == "WI";
  });
  EXPECT_EQ(wi.num_rows(), 3u);
}

TEST(OpsTest, ProjectDistinct) {
  Table t = MakeOrders();
  auto states = ProjectDistinct(t, {"state"});
  ASSERT_TRUE(states.ok());
  EXPECT_EQ(states->num_rows(), 2u);
  auto pairs = ProjectDistinct(t, {"item", "ad"});
  ASSERT_TRUE(pairs.ok());
  // (1,100), (1,101), (2,102), (2,null) -> 4 distinct pairs; note row 0 and
  // row 2 share (1,100).
  EXPECT_EQ(pairs->num_rows(), 4u);
}

TEST(OpsTest, ProjectUnknownColumnFails) {
  Table t = MakeOrders();
  EXPECT_FALSE(Project(t, {"nope"}).ok());
}

TEST(OpsTest, KeyForeignKeyJoin) {
  auto joined = KeyForeignKeyJoin(MakeOrders(), "ad", MakeAds(), "ad");
  ASSERT_TRUE(joined.ok());
  // The null-FK row is dropped.
  EXPECT_EQ(joined->num_rows(), 4u);
  ASSERT_TRUE(joined->schema().FindField("size").has_value());
  EXPECT_DOUBLE_EQ(joined->ColumnByName("size").DoubleAt(1), 4.0);
}

TEST(OpsTest, JoinRejectsDuplicateKeys) {
  Table dup(Schema({{"ad", DataType::kInt64}, {"size", DataType::kDouble}}));
  dup.AppendRow({Value(int64_t{1}), Value(1.0)});
  dup.AppendRow({Value(int64_t{1}), Value(2.0)});
  EXPECT_FALSE(KeyForeignKeyJoin(MakeOrders(), "ad", dup, "ad").ok());
}

TEST(OpsTest, GroupByAggregate) {
  auto agg = GroupByAggregate(MakeOrders(), {"item"},
                              {{AggFn::kSum, "profit", "total"},
                               {AggFn::kCount, "profit", "orders"},
                               {AggFn::kMax, "profit", "best"},
                               {AggFn::kMin, "profit", "worst"},
                               {AggFn::kAvg, "profit", "avg"}});
  ASSERT_TRUE(agg.ok());
  ASSERT_EQ(agg->num_rows(), 2u);
  // Rows are ordered by group key; item 1 first.
  EXPECT_EQ(agg->ValueAt(0, 0).int64(), 1);
  EXPECT_DOUBLE_EQ(agg->ValueAt(0, 1).dbl(), 35.0);
  EXPECT_EQ(agg->ValueAt(0, 2).int64(), 3);
  EXPECT_DOUBLE_EQ(agg->ValueAt(0, 3).dbl(), 20.0);
  EXPECT_DOUBLE_EQ(agg->ValueAt(0, 4).dbl(), 5.0);
  EXPECT_DOUBLE_EQ(agg->ValueAt(1, 1).dbl(), 4.0);
}

TEST(OpsTest, GroupByCountDistinct) {
  auto agg = GroupByAggregate(MakeOrders(), {"item"},
                              {{AggFn::kCountDistinct, "ad", "ads"}});
  ASSERT_TRUE(agg.ok());
  EXPECT_EQ(agg->ValueAt(0, 1).int64(), 2);  // item 1 used ads 100, 101
  EXPECT_EQ(agg->ValueAt(1, 1).int64(), 1);  // item 2: ad 102 (null ignored)
}

TEST(OpsTest, ScalarAggregateOfEmptyInput) {
  Table empty(Schema({{"x", DataType::kDouble}}));
  auto agg = GroupByAggregate(empty, {},
                              {{AggFn::kCount, "x", "n"},
                               {AggFn::kSum, "x", "s"}});
  ASSERT_TRUE(agg.ok());
  ASSERT_EQ(agg->num_rows(), 1u);
  EXPECT_EQ(agg->ValueAt(0, 0).int64(), 0);
  EXPECT_TRUE(agg->ValueAt(0, 1).is_null());
}

TEST(OpsTest, SortByNullsFirst) {
  Table t = MakeOrders();
  auto sorted = SortBy(t, {"ad"});
  ASSERT_TRUE(sorted.ok());
  EXPECT_TRUE(sorted->ValueAt(0, 3).is_null());
  EXPECT_EQ(sorted->ValueAt(1, 3).int64(), 100);
}

TEST(OpsTest, TablesEqualUnorderedIgnoresRowOrder) {
  Table t = MakeOrders();
  Table shuffled = t.TakeRows({4, 2, 0, 3, 1});
  EXPECT_TRUE(TablesEqualUnordered(t, shuffled));
  Table different = t.TakeRows({0, 1, 2, 3, 3});
  EXPECT_FALSE(TablesEqualUnordered(t, different));
}

TEST(CsvTest, RoundTrip) {
  Table t(Schema({{"id", DataType::kInt64},
                  {"name", DataType::kString},
                  {"score", DataType::kDouble}}));
  t.AppendRow({Value(int64_t{1}), Value("plain"), Value(1.25)});
  t.AppendRow({Value(int64_t{2}), Value("has,comma"), Value::Null()});
  t.AppendRow({Value(int64_t{3}), Value("has\"quote"), Value(-2.0)});
  const std::string path = ::testing::TempDir() + "/roundtrip.csv";
  ASSERT_TRUE(WriteCsv(t, path).ok());
  auto back = ReadCsv(path, t.schema());
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(TablesEqualUnordered(t, *back));
  std::remove(path.c_str());
}

TEST(CsvTest, ReadRejectsBadNumbers) {
  const std::string path = ::testing::TempDir() + "/bad.csv";
  FILE* f = fopen(path.c_str(), "w");
  fputs("id\nnot_a_number\n", f);
  fclose(f);
  auto r = ReadCsv(path, Schema({{"id", DataType::kInt64}}));
  EXPECT_FALSE(r.ok());
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileFails) {
  auto r = ReadCsv("/nonexistent/nope.csv", Schema({{"a", DataType::kInt64}}));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace bellwether::table
