// Budget planner: sweeps the observation budget and reports, for each
// budget, the bellwether region the constrained search returns, its cost,
// its cross-validated error with a confidence interval, and how unique the
// choice is — the information a planner needs to pick the knee of the
// error-vs-budget curve (Fig. 7's analysis as a decision tool).

#include <cstdio>

#include "core/basic_search.h"
#include "core/training_data_gen.h"
#include "datagen/mail_order.h"
#include "storage/training_data.h"

using namespace bellwether;  // NOLINT: example brevity

int main() {
  datagen::MailOrderConfig config;
  config.num_items = 300;
  config.seed = 31;
  const datagen::MailOrderDataset dataset = datagen::GenerateMailOrder(config);
  const double max_budget = 90.0;
  const core::BellwetherSpec spec = dataset.MakeSpec(max_budget, 0.5);
  auto data = core::GenerateTrainingDataInMemory(spec);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  storage::TrainingDataSource* source = data->source.get();

  core::BasicSearchOptions options;
  options.estimate = regression::ErrorEstimate::kCrossValidation;
  options.min_examples = 30;
  auto full = core::RunBasicBellwetherSearch(source, options);
  if (!full.ok()) return 1;

  std::printf("%-8s %-16s %-8s %-22s %-10s\n", "budget", "bellwether",
              "cost", "cv rmse [95% interval]", "unique?");
  double prev_rmse = -1.0;
  double knee = -1.0;
  for (double budget = 10.0; budget <= max_budget; budget += 10.0) {
    auto r = core::SelectUnderBudget(*full, source,
                                     data->profile.region_costs, budget);
    if (!r.ok() || !r->found()) {
      std::printf("%-8.0f (no feasible region)\n", budget);
      continue;
    }
    const double lo = r->error.LowerConfidenceBound(0.95);
    const double hi = r->error.UpperConfidenceBound(0.95);
    const double indis = r->FractionIndistinguishable(0.95);
    char interval[64];
    std::snprintf(interval, sizeof(interval), "%.0f [%.0f, %.0f]",
                  r->error.rmse, lo, hi);
    std::printf("%-8.0f %-16s %-8.1f %-22s %-10s\n", budget,
                spec.space->RegionLabel(r->bellwether).c_str(),
                data->profile.region_costs[r->bellwether], interval,
                indis < 0.05 ? "yes" : "no");
    // The knee: the first budget where spending 10 more improves the error
    // by under 2%.
    if (knee < 0 && prev_rmse > 0 &&
        r->error.rmse > 0.98 * prev_rmse) {
      knee = budget - 10.0;
    }
    prev_rmse = r->error.rmse;
  }
  if (knee > 0) {
    std::printf("\nrecommendation: budget %.0f — beyond it, additional spend "
                "buys <2%% error reduction.\n", knee);
  }
  return 0;
}
