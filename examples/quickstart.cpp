// Quickstart: the smallest end-to-end bellwether analysis.
//
// Builds a tiny star schema by hand (orders + items + a region space of
// weekly windows x a 2-level location tree), generates the training sets of
// every feasible region with one CUBE pass, runs the basic bellwether
// search, and uses the bellwether model to predict the season-total profit
// of an item from its first-week regional sales.

#include <cstdio>

#include "core/basic_search.h"
#include "core/eval_util.h"
#include "core/training_data_gen.h"
#include "common/random.h"
#include "olap/cost.h"
#include "olap/dimension.h"
#include "olap/region.h"
#include "storage/training_data.h"
#include "table/table.h"

using namespace bellwether;  // NOLINT: example brevity

int main() {
  // ---- 1. The historical database ----------------------------------------
  // Fact table: one row per order. Dimension coordinates are int64: the
  // 1-based week for the interval dimension, the leaf NodeId for the tree.
  olap::HierarchicalDimension location("Location", "All");
  const olap::NodeId us = location.AddNode("US", location.root());
  const olap::NodeId wi = location.AddNode("WI", us);
  const olap::NodeId md = location.AddNode("MD", us);
  const olap::NodeId kr = location.AddNode("KR", location.root());

  std::vector<olap::Dimension> dims;
  dims.emplace_back(olap::IntervalDimension("Week", 4));
  dims.emplace_back(location);
  olap::RegionSpace space(std::move(dims));

  table::Table fact(table::Schema({{"Week", table::DataType::kInt64},
                                   {"Location", table::DataType::kInt64},
                                   {"ItemID", table::DataType::kInt64},
                                   {"Profit", table::DataType::kDouble}}));
  table::Table items(table::Schema({{"ItemID", table::DataType::kInt64},
                                    {"RDExpense", table::DataType::kDouble}}));

  // Synthesize 40 items: WI's first-week sales are an unbiased 10% preview
  // of the season total; MD and KR previews are biased per item.
  Rng rng(7);
  for (int64_t id = 1; id <= 40; ++id) {
    const double season_total = rng.NextDouble(50, 500);
    items.AppendRow({table::Value(id), table::Value(rng.NextDouble(1, 9))});
    for (int week = 1; week <= 4; ++week) {
      const double weight = week == 1 ? 0.1 : 0.3;
      struct StateGen {
        olap::NodeId node;
        double bias;
      };
      for (const StateGen& sg :
           {StateGen{wi, 1.0}, StateGen{md, rng.NextDouble(0.4, 1.6)},
            StateGen{kr, rng.NextDouble(0.4, 1.6)}}) {
        const double profit = season_total * weight * sg.bias / 3.0 *
                              (1.0 + 0.02 * rng.NextGaussian());
        fact.AppendRow({table::Value(static_cast<int64_t>(week)),
                        table::Value(static_cast<int64_t>(sg.node)),
                        table::Value(id), table::Value(profit)});
      }
    }
  }

  // Cost: observing one (week, state) cell costs 1; KR costs 4.
  std::vector<double> cell_costs(space.NumFinestCells(), 1.0);
  {
    olap::PointCoords p{1, kr};
    for (int week = 1; week <= 4; ++week) {
      p[0] = week;
      cell_costs[space.FinestCellOf(p)] = 4.0;
    }
  }
  auto cost = olap::CostModel::Create(&space, cell_costs);
  if (!cost.ok()) return 1;

  // ---- 2. The bellwether problem ------------------------------------------
  core::BellwetherSpec spec;
  spec.space = &space;
  spec.fact = &fact;
  spec.item_id_column = "ItemID";
  spec.dimension_columns = {"Week", "Location"};
  spec.item_table = &items;
  spec.item_table_id_column = "ItemID";
  spec.item_feature_columns = {"RDExpense"};
  spec.regional_features = {
      {core::FeatureQuery::Kind::kFactMeasure, table::AggFn::kSum,
       "RegionalProfit", "Profit", "", ""},
  };
  spec.target_fn = table::AggFn::kSum;  // season-total worldwide profit
  spec.target_column = "Profit";
  spec.cost = &*cost;
  spec.budget = 2.0;        // we can afford two cheap cells
  spec.min_coverage = 0.9;  // the region must cover 90% of the items

  // Region sets stream into a sink as they are generated; the MemorySink
  // behind GenerateTrainingDataInMemory keeps them resident and hands back
  // the source directly — no copy.
  auto data = core::GenerateTrainingDataInMemory(spec);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  std::printf("feasible regions under budget %.0f: %zu\n", spec.budget,
              data->source->num_region_sets());

  // ---- 3. The basic bellwether search -------------------------------------
  core::BasicSearchOptions options;
  options.estimate = regression::ErrorEstimate::kCrossValidation;
  auto result = core::RunBasicBellwetherSearch(data->source.get(), options);
  if (!result.ok() || !result->found()) {
    std::fprintf(stderr, "no bellwether found\n");
    return 1;
  }
  std::printf("bellwether region: %s  (cv rmse %.2f, avg region rmse %.2f)\n",
              space.RegionLabel(result->bellwether).c_str(),
              result->error.rmse, result->AverageError());

  // ---- 4. Predict a "new" item from its bellwether-region data ------------
  const core::RegionFeatureLookup lookup(data->memory_sets());
  const int32_t item = data->profile.items.Find(40);
  const double* x = lookup.Find(result->bellwether, item);
  if (x == nullptr) return 1;
  std::printf("item 40: predicted season total %.1f, actual %.1f\n",
              result->model.Predict(x), data->profile.targets[item]);
  return 0;
}
