// Product launch planning — the paper's §3.1 motivating scenario.
//
// A mail-order company wants to predict the first-year worldwide profit of
// new items from a short, cheap observation window. We:
//   1. load a year of historical orders (synthetic mail-order data),
//   2. hold out 10% of the items as the "new products",
//   3. run the basic search to find the company's global bellwether region,
//   4. build an item-centric bellwether tree (different product segments may
//      have different bellwethers),
//   5. compare predictions for the held-out products.

#include <cmath>
#include <cstdio>

#include "core/basic_search.h"
#include "core/bellwether_tree.h"
#include "core/eval_util.h"
#include "core/training_data_gen.h"
#include "datagen/mail_order.h"
#include "storage/training_data.h"

using namespace bellwether;  // NOLINT: example brevity

int main() {
  datagen::MailOrderConfig config;
  config.num_items = 300;
  config.seed = 11;
  std::printf("generating one year of order history...\n");
  const datagen::MailOrderDataset dataset = datagen::GenerateMailOrder(config);
  std::printf("  %zu transactions, %zu items, %zu catalogs\n",
              dataset.fact.num_rows(), dataset.items.num_rows(),
              dataset.catalogs.num_rows());

  const double budget = 55.0;  // marketing budget for the pilot observation
  const core::BellwetherSpec spec = dataset.MakeSpec(budget, 0.5);
  auto data = core::GenerateTrainingDataInMemory(spec);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }

  // Hold out every 10th item as a future product.
  const int32_t num_items =
      static_cast<int32_t>(data->profile.targets.size());
  std::vector<uint8_t> historical(num_items, 1);
  std::vector<int32_t> new_items;
  for (int32_t i = 0; i < num_items; i += 10) {
    historical[i] = 0;
    new_items.push_back(i);
  }

  storage::TrainingDataSource* source = data->source.get();
  core::BasicSearchOptions options;
  options.estimate = regression::ErrorEstimate::kCrossValidation;
  options.min_examples = 30;
  auto basic = core::RunBasicBellwetherSearch(source, options, &historical);
  if (!basic.ok() || !basic->found()) return 1;
  std::printf("\nglobal bellwether region under budget %.0f: %s\n", budget,
              spec.space->RegionLabel(basic->bellwether).c_str());
  std::printf("  cv rmse %.0f vs average feasible region %.0f\n",
              basic->error.rmse, basic->AverageError());

  core::TreeBuildConfig tree_config;
  tree_config.split_columns = {"Category", "ExpenseRange", "RDExpense"};
  tree_config.min_items = 50;
  tree_config.max_depth = 3;
  tree_config.max_numeric_split_points = 8;
  tree_config.min_examples_per_model = 20;
  auto tree = core::BuildBellwetherTreeRainForest(source, dataset.items,
                                                  tree_config, &historical);
  if (!tree.ok()) return 1;
  std::printf("\nbellwether tree (%d leaves):\n%s\n", tree->NumLeaves(),
              tree->ToString(spec.space).c_str());

  // Predict the held-out products: collect pilot data from each one's
  // bellwether region and apply the region's model.
  const core::RegionFeatureLookup lookup(data->memory_sets());
  double basic_sse = 0.0, tree_sse = 0.0;
  int64_t n = 0;
  std::printf("new product forecasts (first 8 shown):\n");
  std::printf("  %-8s %-12s %-12s %-12s %s\n", "item", "actual", "basic",
              "tree", "tree region");
  for (int32_t item : new_items) {
    if (std::isnan(data->profile.targets[item])) continue;
    const double* xb = lookup.Find(basic->bellwether, item);
    auto tp = tree->PredictItem(item, lookup);
    if (xb == nullptr || !tp.ok()) continue;
    const double bp = basic->model.Predict(xb);
    const double actual = data->profile.targets[item];
    basic_sse += (bp - actual) * (bp - actual);
    tree_sse += (*tp - actual) * (*tp - actual);
    if (n < 8) {
      const int32_t node = tree->RouteItem(item);
      std::printf("  %-8lld %-12.0f %-12.0f %-12.0f %s\n",
                  static_cast<long long>(data->profile.items.IdAt(item)),
                  actual, bp,
                  *tp,
                  spec.space->RegionLabel(tree->nodes()[node].region).c_str());
    }
    ++n;
  }
  if (n == 0) return 1;
  std::printf("\nforecast rmse over %lld new products: basic %.0f, tree %.0f\n",
              static_cast<long long>(n), std::sqrt(basic_sse / n),
              std::sqrt(tree_sse / n));
  return 0;
}
