// bellwether_cli — run a basic bellwether analysis from CSV files.
//
//   bellwether_cli --fact=orders.csv --items=items.csv ...
//       --hierarchy=location.txt --costs=costs.csv --time-max=10
//       --budget=50 --coverage=0.5
//
// File formats:
//   orders.csv     header: Time,Location,ItemID,Profit — Time is a 1-based
//                  integer period, Location a leaf label of the hierarchy.
//   items.csv      header: ItemID,<numeric feature columns...>
//   location.txt   one node per line as "child<TAB>parent"; the first line
//                  names the root alone.
//   costs.csv      header: Time,Location,Cost — cost of observing one
//                  (period, leaf) cell.
//
// With no --fact flag the tool generates a demo dataset into /tmp, writes
// the four files, and analyses them — a full round trip through the CSV
// layer.

#include <cstdio>
#include <fstream>
#include <string>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "core/basic_search.h"
#include "core/training_data_gen.h"
#include "datagen/mail_order.h"
#include "olap/cost.h"
#include "storage/training_data.h"
#include "table/csv.h"

using namespace bellwether;  // NOLINT: example brevity

namespace {

using bench::FlagString;

// Reads "child<TAB>parent" lines into a hierarchy; first line is the root.
Result<olap::HierarchicalDimension> ReadHierarchy(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open hierarchy file: " + path);
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("empty hierarchy file: " + path);
  }
  olap::HierarchicalDimension dim(
      "Location", std::string(StripAsciiWhitespace(line)));
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    const auto stripped = StripAsciiWhitespace(line);
    if (stripped.empty()) continue;
    const auto parts = SplitString(stripped, '\t');
    if (parts.size() != 2) {
      return Status::InvalidArgument(path + ":" + std::to_string(line_no) +
                                     ": expected 'child<TAB>parent'");
    }
    BW_ASSIGN_OR_RETURN(olap::NodeId parent, dim.FindNode(parts[1]));
    dim.AddNode(parts[0], parent);
  }
  return dim;
}

// Remaps a string Location column to leaf NodeIds.
Result<table::Table> RemapLocations(const table::Table& fact,
                                    const olap::HierarchicalDimension& dim) {
  const auto loc_idx = fact.schema().FindField("Location");
  if (!loc_idx.has_value()) {
    return Status::NotFound("fact table needs a Location column");
  }
  table::Schema schema;
  for (size_t c = 0; c < fact.schema().num_fields(); ++c) {
    table::Field f = fact.schema().field(c);
    if (c == *loc_idx) f.type = table::DataType::kInt64;
    schema.AddField(f);
  }
  table::Table out(schema);
  std::vector<table::Value> row;
  for (size_t r = 0; r < fact.num_rows(); ++r) {
    row = fact.RowAt(r);
    if (!row[*loc_idx].is_null()) {
      BW_ASSIGN_OR_RETURN(olap::NodeId n, dim.FindNode(row[*loc_idx].str()));
      if (!dim.IsLeaf(n)) {
        return Status::InvalidArgument("Location is not a leaf: " +
                                       row[*loc_idx].str());
      }
      row[*loc_idx] = table::Value(static_cast<int64_t>(n));
    }
    out.AppendRow(row);
  }
  return out;
}

// Writes the demo dataset (mail-order generator exported to CSV).
Status WriteDemoFiles(const std::string& dir, std::string* fact_path,
                      std::string* items_path, std::string* hier_path,
                      std::string* costs_path) {
  datagen::MailOrderConfig config;
  config.num_items = 150;
  config.seed = 41;
  const datagen::MailOrderDataset data = datagen::GenerateMailOrder(config);
  const auto& loc =
      std::get<olap::HierarchicalDimension>(data.space->dim(1));

  // Fact with Location exported as leaf labels.
  table::Table fact(table::Schema({{"Time", table::DataType::kInt64},
                                   {"Location", table::DataType::kString},
                                   {"ItemID", table::DataType::kInt64},
                                   {"Profit", table::DataType::kDouble}}));
  for (size_t r = 0; r < data.fact.num_rows(); ++r) {
    fact.AppendRow({data.fact.ValueAt(r, 0),
                    table::Value(loc.label(static_cast<olap::NodeId>(
                        data.fact.ValueAt(r, 1).int64()))),
                    data.fact.ValueAt(r, 2), data.fact.ValueAt(r, 5)});
  }
  *fact_path = dir + "/demo_orders.csv";
  BW_RETURN_IF_ERROR(table::WriteCsv(fact, *fact_path));

  // Items: id + RDExpense.
  table::Table items(table::Schema({{"ItemID", table::DataType::kInt64},
                                    {"RDExpense", table::DataType::kDouble}}));
  for (size_t r = 0; r < data.items.num_rows(); ++r) {
    items.AppendRow({data.items.ValueAt(r, 0), data.items.ValueAt(r, 3)});
  }
  *items_path = dir + "/demo_items.csv";
  BW_RETURN_IF_ERROR(table::WriteCsv(items, *items_path));

  // Hierarchy file.
  *hier_path = dir + "/demo_location.txt";
  {
    std::ofstream out(*hier_path);
    out << loc.label(loc.root()) << "\n";
    for (olap::NodeId n = 1; n < loc.num_nodes(); ++n) {
      out << loc.label(n) << "\t" << loc.label(loc.parent(n)) << "\n";
    }
    if (!out) return Status::IoError("cannot write " + *hier_path);
  }

  // Costs per finest cell.
  table::Table costs(table::Schema({{"Time", table::DataType::kInt64},
                                    {"Location", table::DataType::kString},
                                    {"Cost", table::DataType::kDouble}}));
  const auto& cell_costs = data.cost->finest_cell_costs();
  olap::PointCoords p(2);
  for (int32_t t = 1; t <= config.num_months; ++t) {
    for (olap::NodeId leaf : loc.leaves()) {
      p[0] = t;
      p[1] = leaf;
      costs.AppendRow(
          {table::Value(static_cast<int64_t>(t)),
           table::Value(loc.label(leaf)),
           table::Value(cell_costs[data.space->FinestCellOf(p)])});
    }
  }
  *costs_path = dir + "/demo_costs.csv";
  return table::WriteCsv(costs, *costs_path);
}

Status Run(int argc, char** argv) {
  std::string fact_path = FlagString(argc, argv, "fact", "");
  std::string items_path = FlagString(argc, argv, "items", "");
  std::string hier_path = FlagString(argc, argv, "hierarchy", "");
  std::string costs_path = FlagString(argc, argv, "costs", "");
  if (fact_path.empty()) {
    std::printf("no --fact given: generating a demo dataset under /tmp\n");
    BW_RETURN_IF_ERROR(WriteDemoFiles("/tmp", &fact_path, &items_path,
                                      &hier_path, &costs_path));
  }
  const int32_t time_max = static_cast<int32_t>(
      bench::FlagDouble(argc, argv, "time-max", 10));
  const double budget = bench::FlagDouble(argc, argv, "budget", 50.0);
  const double coverage = bench::FlagDouble(argc, argv, "coverage", 0.5);

  // ---- Load ----
  BW_ASSIGN_OR_RETURN(olap::HierarchicalDimension location,
                      ReadHierarchy(hier_path));
  BW_ASSIGN_OR_RETURN(
      table::Table fact_raw,
      table::ReadCsv(fact_path,
                     table::Schema({{"Time", table::DataType::kInt64},
                                    {"Location", table::DataType::kString},
                                    {"ItemID", table::DataType::kInt64},
                                    {"Profit", table::DataType::kDouble}})));
  BW_ASSIGN_OR_RETURN(table::Table fact, RemapLocations(fact_raw, location));
  BW_ASSIGN_OR_RETURN(
      table::Table items,
      table::ReadCsv(items_path,
                     table::Schema({{"ItemID", table::DataType::kInt64},
                                    {"RDExpense", table::DataType::kDouble}})));
  BW_ASSIGN_OR_RETURN(
      table::Table costs_tbl,
      table::ReadCsv(costs_path,
                     table::Schema({{"Time", table::DataType::kInt64},
                                    {"Location", table::DataType::kString},
                                    {"Cost", table::DataType::kDouble}})));
  std::printf("loaded %zu orders, %zu items, %d locations\n",
              fact.num_rows(), items.num_rows(), location.num_nodes());

  // ---- Region space + cost model ----
  std::vector<olap::Dimension> dims;
  dims.emplace_back(olap::IntervalDimension("Time", time_max));
  dims.emplace_back(location);
  olap::RegionSpace space(std::move(dims));
  const auto& loc = std::get<olap::HierarchicalDimension>(space.dim(1));
  std::vector<double> cell_costs(space.NumFinestCells(), 0.0);
  olap::PointCoords p(2);
  for (size_t r = 0; r < costs_tbl.num_rows(); ++r) {
    BW_ASSIGN_OR_RETURN(olap::NodeId n,
                        loc.FindNode(costs_tbl.ValueAt(r, 1).str()));
    p[0] = static_cast<int32_t>(costs_tbl.ValueAt(r, 0).int64());
    p[1] = n;
    if (p[0] < 1 || p[0] > time_max) {
      return Status::OutOfRange("cost row outside the time range");
    }
    cell_costs[space.FinestCellOf(p)] = costs_tbl.ValueAt(r, 2).AsDouble();
  }
  BW_ASSIGN_OR_RETURN(olap::CostModel cost,
                      olap::CostModel::Create(&space, cell_costs));

  // ---- Spec + search ----
  core::BellwetherSpec spec;
  spec.space = &space;
  spec.fact = &fact;
  spec.item_id_column = "ItemID";
  spec.dimension_columns = {"Time", "Location"};
  spec.item_table = &items;
  spec.item_table_id_column = "ItemID";
  spec.item_feature_columns = {"RDExpense"};
  spec.regional_features = {
      {core::FeatureQuery::Kind::kFactMeasure, table::AggFn::kSum,
       "RegionalProfit", "Profit", "", ""},
      {core::FeatureQuery::Kind::kFactMeasure, table::AggFn::kCount,
       "RegionalOrders", "Profit", "", ""},
  };
  spec.target_fn = table::AggFn::kSum;
  spec.target_column = "Profit";
  spec.cost = &cost;
  spec.budget = budget;
  spec.min_coverage = coverage;

  BW_ASSIGN_OR_RETURN(core::GeneratedTrainingData data,
                      core::GenerateTrainingDataInMemory(spec));
  std::printf("%zu feasible regions under budget %.1f (coverage >= %.2f)\n",
              data.source->num_region_sets(), budget, coverage);
  core::BasicSearchOptions options;
  options.estimate = regression::ErrorEstimate::kCrossValidation;
  options.min_examples = 25;
  BW_ASSIGN_OR_RETURN(
      core::BasicSearchResult result,
      core::RunBasicBellwetherSearch(data.source.get(), options));
  if (!result.found()) {
    return Status::NotFound("no usable bellwether region under the budget");
  }
  std::printf("\nbellwether region: %s\n",
              space.RegionLabel(result.bellwether).c_str());
  std::printf("  cost:          %.2f\n", cost.RegionCost(result.bellwether));
  std::printf("  cv rmse:       %.2f (avg region: %.2f)\n",
              result.error.rmse, result.AverageError());
  std::printf("  95%% interval:  [%.2f, %.2f]\n",
              result.error.LowerConfidenceBound(0.95),
              result.error.UpperConfidenceBound(0.95));
  std::printf("  unique at 95%%: %s\n",
              result.FractionIndistinguishable(0.95) < 0.05 ? "yes" : "no");
  std::printf("\nmodel coefficients:\n");
  for (size_t j = 0; j < result.model.beta().size(); ++j) {
    std::printf("  %-20s %+.6g\n", data.profile.feature_names[j].c_str(),
                result.model.beta()[j]);
  }
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  const Status st = Run(argc, argv);
  bench::DumpTelemetryIfRequested(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
