// Bellwether cube as an exploratory tool (§6.2): builds the cube over the
// mail-order item hierarchies and walks the rollup/drilldown levels,
// printing the cross-tabulation a data-cube UI would show — for each cell
// (item subset), the subset's bellwether region and its model error.

#include <cstdio>

#include "core/bellwether_cube.h"
#include "core/training_data_gen.h"
#include "datagen/mail_order.h"
#include "storage/training_data.h"

using namespace bellwether;  // NOLINT: example brevity

namespace {

void PrintLevel(const core::BellwetherCube& cube,
                const olap::RegionSpace* region_space,
                const std::vector<int32_t>& depths, const char* title) {
  std::printf("\n-- %s --\n", title);
  std::printf("  %-32s %-8s %-16s %s\n", "item subset", "|S|",
              "bellwether", "train rmse");
  for (const auto& row : cube.CrossTab(depths, region_space)) {
    std::printf("  %-32s %-8d %-16s %.0f\n", row.subset_label.c_str(),
                row.subset_size, row.region_label.c_str(), row.error);
  }
}

}  // namespace

int main() {
  datagen::MailOrderConfig config;
  config.num_items = 300;
  config.seed = 23;
  const datagen::MailOrderDataset dataset = datagen::GenerateMailOrder(config);
  const core::BellwetherSpec spec = dataset.MakeSpec(/*budget=*/60.0,
                                                     /*min_coverage=*/0.5);
  auto data = core::GenerateTrainingDataInMemory(spec);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }

  auto subsets =
      core::ItemSubsetSpace::Create(dataset.items, dataset.item_hierarchies);
  if (!subsets.ok()) {
    std::fprintf(stderr, "%s\n", subsets.status().ToString().c_str());
    return 1;
  }
  core::CubeBuildConfig cube_config;
  cube_config.min_subset_size = 25;
  cube_config.min_examples_per_model = 20;
  cube_config.compute_cv_stats = true;
  auto cube = core::BuildBellwetherCubeOptimized(data->source.get(), *subsets,
                                                 cube_config);
  if (!cube.ok()) {
    std::fprintf(stderr, "%s\n", cube.status().ToString().c_str());
    return 1;
  }
  std::printf("bellwether cube: %zu significant cells over %lld subsets\n",
              cube->cells().size(),
              static_cast<long long>((*subsets)->NumSubsets()));

  // Rollup/drilldown walk, coarse to fine. The item hierarchies are
  // Category (All -> Division -> Category) and ExpenseRange (All -> Range).
  PrintLevel(*cube, spec.space, {0, 0}, "rollup: [All, All]");
  PrintLevel(*cube, spec.space, {1, 0}, "drill down: [Division, All]");
  PrintLevel(*cube, spec.space, {2, 0}, "drill down: [Category, All]");
  PrintLevel(*cube, spec.space, {1, 1}, "cross: [Division, Range]");
  PrintLevel(*cube, spec.space, {2, 1}, "base: [Category, Range]");

  // Item-centric prediction through the cube.
  const core::RegionFeatureLookup lookup(data->memory_sets());
  std::printf("\nprediction for three items (95%% confidence rule):\n");
  for (int32_t item : {0, 1, 2}) {
    auto p = cube->PredictItem(item, lookup, 0.95);
    if (!p.ok()) continue;
    std::printf("  item %lld: subset %s, region %s -> predicted %.0f "
                "(actual %.0f)\n",
                static_cast<long long>(data->profile.items.IdAt(item)),
                (*subsets)->SubsetLabel(p->subset).c_str(),
                spec.space->RegionLabel(p->region).c_str(), p->value,
                data->profile.targets[item]);
  }
  return 0;
}
